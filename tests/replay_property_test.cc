#include <string>
#include <tuple>

#include "common/units.h"
#include "gtest/gtest.h"
#include "sim/replay.h"
#include "workloads/paper_workloads.h"
#include "workloads/trace_generator.h"

namespace swim::sim {
namespace {

trace::Trace WorkloadSlice(const char* name, size_t jobs, uint64_t seed) {
  auto spec = workloads::PaperWorkloadByName(name);
  workloads::GeneratorOptions options;
  options.job_count_override = jobs;
  options.seed = seed;
  auto trace = workloads::GenerateTrace(*spec, options);
  SWIM_CHECK_OK(trace.status());
  return *std::move(trace);
}

/// Invariants that must hold for every scheduling policy on every
/// workload shape: work conservation, completion, bounded utilization.
class SchedulerInvariantTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(SchedulerInvariantTest, ConservesWorkAndCompletes) {
  auto [workload, policy] = GetParam();
  trace::Trace t = WorkloadSlice(workload.c_str(), 2000, 31);
  ReplayOptions options;
  options.cluster.nodes = 200;
  options.scheduler = policy;
  auto result = ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());

  // Every job completes.
  EXPECT_EQ(result->outcomes.size(), t.size());
  EXPECT_EQ(result->unfinished_jobs, 0u);

  // Occupancy integral == total task-seconds (tasks are neither lost nor
  // duplicated by batching).
  double total_task_seconds = 0.0;
  for (const auto& job : t.jobs()) {
    // The engine floors per-task durations at 1 ms, so compare against
    // the effective (floored) work.
    int64_t maps = std::min<int64_t>(std::max<int64_t>(job.map_tasks, 1),
                                     options.max_tasks_per_job);
    total_task_seconds +=
        std::max(job.map_task_seconds, 1e-3 * static_cast<double>(maps));
    int64_t reduces =
        std::min<int64_t>(job.reduce_tasks, options.max_tasks_per_job);
    if (reduces > 0) {
      total_task_seconds += std::max(
          job.reduce_task_seconds, 1e-3 * static_cast<double>(reduces));
    }
  }
  double integral = 0.0;
  for (double o : result->hourly_occupancy) integral += o * 3600.0;
  EXPECT_NEAR(integral, total_task_seconds, total_task_seconds * 1e-6 + 1.0);

  // Utilization in [0, 1]; latencies >= ideal.
  EXPECT_GE(result->utilization, 0.0);
  EXPECT_LE(result->utilization, 1.0 + 1e-9);
  for (const auto& outcome : result->outcomes) {
    EXPECT_GE(outcome.latency + 1e-6, outcome.ideal_latency);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsXPolicies, SchedulerInvariantTest,
    ::testing::Combine(::testing::Values("CC-b", "CC-e", "FB-2010"),
                       ::testing::Values("fifo", "fair", "two-tier")),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::get<1>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

/// More cluster capacity never increases total makespan under FIFO
/// (slot-count monotonicity).
class ClusterSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(ClusterSizeTest, MoreNodesNeverSlower) {
  trace::Trace t = WorkloadSlice("CC-b", 1500, 77);
  ReplayOptions small_cluster;
  small_cluster.cluster.nodes = GetParam();
  ReplayOptions big_cluster;
  big_cluster.cluster.nodes = GetParam() * 2;
  auto small_result = ReplayTrace(t, small_cluster);
  auto big_result = ReplayTrace(t, big_cluster);
  ASSERT_TRUE(small_result.ok());
  ASSERT_TRUE(big_result.ok());
  EXPECT_LE(big_result->makespan, small_result->makespan * 1.001 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClusterSizeTest,
                         ::testing::Values(5, 20, 80));

/// Straggler probability monotonicity: more stragglers, no faster tails.
TEST(StragglerPropertyTest, TailLatencyMonotoneInProbability) {
  trace::Trace t = WorkloadSlice("CC-e", 1500, 41);
  double previous = 0.0;
  for (double p : {0.0, 0.1, 0.4}) {
    ReplayOptions options;
    options.cluster.nodes = 100;
    options.straggler_probability = p;
    options.straggler_factor = 10.0;
    auto result = ReplayTrace(t, options);
    ASSERT_TRUE(result.ok());
    double p99 = result->LatencyQuantile(true, 0.99);
    EXPECT_GE(p99 + 1e-6, previous);
    previous = p99;
  }
}

/// The latency-quantile helpers behave on empty tiers.
TEST(ReplayResultTest, EmptyTierQuantiles) {
  ReplayResult result;
  EXPECT_EQ(result.LatencyQuantile(true, 0.5), 0.0);
  EXPECT_EQ(result.MeanSlowdown(false), 0.0);
  EXPECT_EQ(result.CountJobs(true), 0u);
}

}  // namespace
}  // namespace swim::sim

#include <cstdio>
#include <string>

#include "common/units.h"
#include "core/synth/fidelity.h"
#include "core/synth/scale_down.h"
#include "core/synth/synthesizer.h"
#include "core/synth/workload_model.h"
#include "gtest/gtest.h"
#include "workloads/paper_workloads.h"
#include "workloads/trace_generator.h"

namespace swim::core {
namespace {

trace::Trace SourceTrace(size_t jobs = 4000, uint64_t seed = 42) {
  auto spec = workloads::PaperWorkloadByName("CC-b");
  workloads::GeneratorOptions options;
  options.job_count_override = jobs;
  options.seed = seed;
  auto trace = workloads::GenerateTrace(*spec, options);
  SWIM_CHECK_OK(trace.status());
  return *std::move(trace);
}

// --- Model building -------------------------------------------------------

TEST(WorkloadModelTest, BuildCapturesBasics) {
  trace::Trace source = SourceTrace();
  auto model = BuildModel(source);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->source_name, "CC-b");
  EXPECT_EQ(model->total_jobs, source.size());
  EXPECT_EQ(model->exemplars.size(), source.size());  // under the cap
  EXPECT_FALSE(model->hourly_envelope.empty());
  EXPECT_TRUE(model->columns.input_paths);
  // Exemplars carry no paths.
  for (const auto& e : model->exemplars) {
    EXPECT_TRUE(e.input_path.empty());
    EXPECT_TRUE(e.output_path.empty());
  }
}

TEST(WorkloadModelTest, ExemplarCapRespected) {
  trace::Trace source = SourceTrace(3000);
  ModelOptions options;
  options.exemplar_cap = 500;
  auto model = BuildModel(source, options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->exemplars.size(), 500u);
  EXPECT_EQ(model->total_jobs, 3000u);
}

TEST(WorkloadModelTest, FitsFileModelFromTrace) {
  trace::Trace source = SourceTrace(6000);
  auto model = BuildModel(source);
  ASSERT_TRUE(model.ok());
  // CC-b spec: 40% input re-access + 15% output re-access.
  EXPECT_GT(model->file_model.input_reaccess_fraction, 0.2);
  EXPECT_GT(model->file_model.output_reaccess_fraction, 0.03);
  EXPECT_GT(model->file_model.zipf_slope, 0.3);
  EXPECT_LT(model->file_model.zipf_slope, 1.6);
  EXPECT_GT(model->file_model.recency_halflife_seconds, 60.0);
}

TEST(WorkloadModelTest, EmptyTraceFails) {
  trace::Trace empty;
  EXPECT_FALSE(BuildModel(empty).ok());
}

TEST(WorkloadModelTest, TextRoundTrip) {
  trace::Trace source = SourceTrace(800);
  auto model = BuildModel(source);
  ASSERT_TRUE(model.ok());
  std::string text = ModelToText(*model);
  auto restored = ModelFromText(text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->source_name, model->source_name);
  EXPECT_EQ(restored->total_jobs, model->total_jobs);
  EXPECT_EQ(restored->exemplars.size(), model->exemplars.size());
  EXPECT_EQ(restored->hourly_envelope.size(), model->hourly_envelope.size());
  EXPECT_NEAR(restored->file_model.zipf_slope, model->file_model.zipf_slope,
              1e-9);
  EXPECT_EQ(restored->columns.names, model->columns.names);
}

TEST(WorkloadModelTest, FileRoundTrip) {
  trace::Trace source = SourceTrace(300);
  auto model = BuildModel(source);
  ASSERT_TRUE(model.ok());
  std::string path = ::testing::TempDir() + "/swim_model_test.txt";
  ASSERT_TRUE(SaveModel(*model, path).ok());
  auto restored = LoadModel(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->exemplars.size(), model->exemplars.size());
  std::remove(path.c_str());
}

TEST(WorkloadModelTest, ParserRejectsGarbage) {
  EXPECT_FALSE(ModelFromText("").ok());
  EXPECT_FALSE(ModelFromText("not a model\n").ok());
  EXPECT_FALSE(ModelFromText("#swim-model v1\nspan=100\n").ok());
  EXPECT_FALSE(LoadModel("/nonexistent/model.txt").ok());
}

// --- Synthesis --------------------------------------------------------------

TEST(SynthesizerTest, ProducesRequestedJobs) {
  auto model = BuildModel(SourceTrace());
  ASSERT_TRUE(model.ok());
  SynthesisOptions options;
  options.job_count = 1000;
  auto synth = SynthesizeTrace(*model, options);
  ASSERT_TRUE(synth.ok());
  EXPECT_EQ(synth->size(), 1000u);
  EXPECT_TRUE(synth->Validate().ok());
  EXPECT_EQ(synth->metadata().name, "CC-b-synth");
}

TEST(SynthesizerTest, Deterministic) {
  auto model = BuildModel(SourceTrace(1000));
  SynthesisOptions options;
  options.seed = 77;
  options.job_count = 500;
  auto a = SynthesizeTrace(*model, options);
  auto b = SynthesizeTrace(*model, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->jobs()[i], b->jobs()[i]);
  }
}

TEST(SynthesizerTest, EmpiricalFidelityIsHigh) {
  trace::Trace source = SourceTrace(6000);
  auto model = BuildModel(source);
  SynthesisOptions options;
  options.job_count = 6000;
  auto synth = SynthesizeTrace(*model, options);
  ASSERT_TRUE(synth.ok());
  FidelityReport report = CompareTraces(source, *synth);
  // Whole-job resampling keeps every marginal close.
  EXPECT_LT(report.max_ks, 0.08) << FormatFidelity(report);
}

TEST(SynthesizerTest, ParametricBaselineIsWorse) {
  trace::Trace source = SourceTrace(6000);
  auto model = BuildModel(source);
  SynthesisOptions empirical;
  empirical.job_count = 6000;
  SynthesisOptions parametric = empirical;
  parametric.method = SynthesisMethod::kParametricLognormal;
  auto synth_e = SynthesizeTrace(*model, empirical);
  auto synth_p = SynthesizeTrace(*model, parametric);
  ASSERT_TRUE(synth_e.ok());
  ASSERT_TRUE(synth_p.ok());
  double ks_e = CompareTraces(source, *synth_e).max_ks;
  double ks_p = CompareTraces(source, *synth_p).max_ks;
  // The paper's section 7 position: closed-form per-dimension fits cannot
  // reproduce these workloads; the empirical model must dominate.
  EXPECT_LT(ks_e, ks_p);
  EXPECT_GT(ks_p, 0.15);
}

TEST(SynthesizerTest, SpanCompressionScalesArrivals) {
  auto model = BuildModel(SourceTrace(2000));
  SynthesisOptions options;
  options.job_count = 2000;
  options.span_seconds = model->span_seconds / 4.0;
  auto synth = SynthesizeTrace(*model, options);
  ASSERT_TRUE(synth.ok());
  EXPECT_LE(synth->EndTime(), options.span_seconds + 13 * kHour);
}

TEST(SynthesizerTest, RejectsEmptyModel) {
  WorkloadModel model;
  model.span_seconds = 100;
  EXPECT_FALSE(SynthesizeTrace(model).ok());
}

// --- Fidelity metric ----------------------------------------------------------

TEST(FidelityTest, IdenticalTracesScoreZero) {
  trace::Trace source = SourceTrace(500);
  FidelityReport report = CompareTraces(source, source);
  EXPECT_DOUBLE_EQ(report.max_ks, 0.0);
  for (const auto& d : report.dimensions) {
    EXPECT_DOUBLE_EQ(d.ks_distance, 0.0);
  }
  EXPECT_EQ(report.dimensions.size(), 6u);
}

TEST(FidelityTest, FormatMentionsDimensions) {
  trace::Trace source = SourceTrace(200);
  std::string text = FormatFidelity(CompareTraces(source, source));
  EXPECT_NE(text.find("input_bytes"), std::string::npos);
  EXPECT_NE(text.find("reduce_task_seconds"), std::string::npos);
}

// --- Scale-down ------------------------------------------------------------------

TEST(ScaleDownTest, JobFractionThins) {
  trace::Trace source = SourceTrace(4000);
  ScaleDownOptions options;
  options.job_fraction = 0.25;
  auto scaled = ScaleDownTrace(source, options);
  ASSERT_TRUE(scaled.ok());
  EXPECT_NEAR(static_cast<double>(scaled->size()), 1000.0, 120.0);
  // Per-job dimensions unchanged: distributions stay close.
  FidelityReport report = CompareTraces(source, *scaled);
  EXPECT_LT(report.max_ks, 0.05);
}

TEST(ScaleDownTest, TimeFactorCompresses) {
  trace::Trace source = SourceTrace(1000);
  ScaleDownOptions options;
  options.time_factor = 0.5;
  auto scaled = ScaleDownTrace(source, options);
  ASSERT_TRUE(scaled.ok());
  EXPECT_EQ(scaled->size(), source.size());
  EXPECT_NEAR(scaled->StartTime(), source.StartTime() * 0.5, 1e-6);
}

TEST(ScaleDownTest, DataFactorShrinksBytesAndTasks) {
  trace::Trace source = SourceTrace(1000);
  ScaleDownOptions options;
  options.data_factor = 0.1;
  auto scaled = ScaleDownTrace(source, options);
  ASSERT_TRUE(scaled.ok());
  double source_bytes = 0, scaled_bytes = 0;
  for (const auto& j : source.jobs()) source_bytes += j.TotalBytes();
  for (const auto& j : scaled->jobs()) scaled_bytes += j.TotalBytes();
  EXPECT_NEAR(scaled_bytes, source_bytes * 0.1, source_bytes * 0.001);
  for (const auto& j : scaled->jobs()) {
    EXPECT_GE(j.map_tasks, 1);
    if (j.reduce_task_seconds > 0) {
      EXPECT_GE(j.reduce_tasks, 1);
    }
  }
  EXPECT_TRUE(scaled->Validate().ok());
}

TEST(ScaleDownTest, RejectsBadOptions) {
  trace::Trace source = SourceTrace(10);
  ScaleDownOptions options;
  options.job_fraction = 0.0;
  EXPECT_FALSE(ScaleDownTrace(source, options).ok());
  options = {};
  options.time_factor = -1;
  EXPECT_FALSE(ScaleDownTrace(source, options).ok());
  options = {};
  options.data_factor = 0;
  EXPECT_FALSE(ScaleDownTrace(source, options).ok());
}

}  // namespace
}  // namespace swim::core

// Tests for the streaming analysis fast path and the follow-mode reader:
// exact-stage byte identity against the batch pipeline, GK quantiles
// against the SortedStats oracle, thread-count determinism, incremental ==
// one-shot, and follower resilience to truncation / mutation / garbage.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/analysis/follow.h"
#include "core/analysis/streaming.h"
#include "core/analysis/workload_report.h"
#include "gtest/gtest.h"
#include "stats/descriptive.h"
#include "trace/columnar.h"
#include "trace/stf1_mutator.h"
#include "trace/trace_io.h"
#include "workloads/paper_workloads.h"
#include "workloads/trace_generator.h"

namespace swim::core {
namespace {

trace::Trace GenerateWorkload(const char* name, size_t jobs) {
  auto spec = workloads::PaperWorkloadByName(name);
  EXPECT_TRUE(spec.ok());
  workloads::GeneratorOptions options;
  options.job_count_override = jobs;
  auto generated = workloads::GenerateTrace(*spec, options);
  EXPECT_TRUE(generated.ok()) << generated.status().ToString();
  return *std::move(generated);
}

trace::ColumnarTraceView ViewOf(const trace::Trace& trace) {
  auto view =
      trace::ColumnarTraceView::FromBytes(trace::TraceToColumnarBytes(trace));
  EXPECT_TRUE(view.ok()) << view.status().ToString();
  return std::move(*view);
}

StreamingReport StreamAll(const trace::ColumnarTraceView& view,
                          StreamingOptions options = {}) {
  StreamingAnalyzer analyzer(options);
  auto status = analyzer.ObserveColumns(view, 0, view.job_count());
  EXPECT_TRUE(status.ok()) << status.ToString();
  auto report = analyzer.Report(&view);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return *std::move(report);
}

std::string WriteTempFile(const char* name, const std::string& bytes) {
  std::string path = ::testing::TempDir() + name;
  std::FILE* out = std::fopen(path.c_str(), "wb");
  EXPECT_NE(out, nullptr);
  EXPECT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), out), bytes.size());
  std::fclose(out);
  return path;
}

void AppendToFile(const std::string& path, const std::string& bytes) {
  std::FILE* out = std::fopen(path.c_str(), "ab");
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), out), bytes.size());
  std::fclose(out);
}

/// A trace holding the first `rows` jobs of `full` (metadata preserved).
trace::Trace Prefix(const trace::Trace& full, size_t rows) {
  trace::Trace prefix;
  prefix.mutable_metadata() = full.metadata();
  for (size_t i = 0; i < rows; ++i) prefix.AddJob(full.jobs()[i]);
  return prefix;
}

// --- Exact-stage identity with the batch pipeline -------------------------

TEST(StreamingTest, ExactStagesMatchBatchBitForBit) {
  const trace::Trace trace = GenerateWorkload("CC-b", 12000);
  auto batch = AnalyzeWorkload(trace);
  ASSERT_TRUE(batch.ok());
  const trace::ColumnarTraceView view = ViewOf(trace);
  const StreamingReport streaming = StreamAll(view);

  // Table 1 accumulators.
  EXPECT_EQ(streaming.summary.jobs, batch->summary.jobs);
  EXPECT_EQ(streaming.summary.bytes_moved, batch->summary.bytes_moved);
  EXPECT_EQ(streaming.summary.span_seconds, batch->summary.span_seconds);
  EXPECT_EQ(streaming.summary.map_only_jobs, batch->summary.map_only_jobs);
  EXPECT_EQ(streaming.summary.machines, batch->summary.machines);

  // File popularity: identical multiset of counts and identical fit.
  ASSERT_EQ(streaming.input_popularity.frequencies.size(),
            batch->input_popularity.frequencies.size());
  for (size_t i = 0; i < streaming.input_popularity.frequencies.size(); ++i) {
    ASSERT_EQ(streaming.input_popularity.frequencies[i],
              batch->input_popularity.frequencies[i]);
  }
  EXPECT_EQ(streaming.input_popularity.zipf.slope,
            batch->input_popularity.zipf.slope);
  EXPECT_EQ(streaming.input_popularity.zipf.r_squared,
            batch->input_popularity.zipf.r_squared);
  EXPECT_EQ(streaming.output_popularity.zipf.slope,
            batch->output_popularity.zipf.slope);
  EXPECT_EQ(streaming.output_popularity.total_accesses,
            batch->output_popularity.total_accesses);

  // Re-access fractions replicate the chronological scan exactly.
  EXPECT_EQ(streaming.reaccess_fractions.jobs_with_paths,
            batch->reaccess_fractions.jobs_with_paths);
  EXPECT_EQ(streaming.reaccess_fractions.input_reaccess,
            batch->reaccess_fractions.input_reaccess);
  EXPECT_EQ(streaming.reaccess_fractions.output_reaccess,
            batch->reaccess_fractions.output_reaccess);

  // Temporal stages consume the identical padded hourly series.
  EXPECT_EQ(streaming.burstiness.jobs.PeakToMedian(),
            batch->burstiness.jobs.PeakToMedian());
  EXPECT_EQ(streaming.burstiness.bytes.PeakToMedian(),
            batch->burstiness.bytes.PeakToMedian());
  EXPECT_EQ(streaming.burstiness.task_seconds.PeakToMedian(),
            batch->burstiness.task_seconds.PeakToMedian());
  EXPECT_EQ(streaming.correlations.jobs_bytes, batch->correlations.jobs_bytes);
  EXPECT_EQ(streaming.correlations.jobs_task_seconds,
            batch->correlations.jobs_task_seconds);
  EXPECT_EQ(streaming.correlations.bytes_task_seconds,
            batch->correlations.bytes_task_seconds);
  EXPECT_EQ(streaming.diurnal_strength, batch->diurnal_strength);

  // Name shares go through the shared JobNameAccumulator.
  EXPECT_EQ(streaming.names.named_jobs, batch->names.named_jobs);
  ASSERT_EQ(streaming.names.words.size(), batch->names.words.size());
  for (size_t i = 0; i < streaming.names.words.size(); ++i) {
    ASSERT_EQ(streaming.names.words[i].word, batch->names.words[i].word);
    ASSERT_EQ(streaming.names.words[i].by_jobs, batch->names.words[i].by_jobs);
    ASSERT_EQ(streaming.names.words[i].by_bytes,
              batch->names.words[i].by_bytes);
  }
  for (size_t f = 0; f < trace::kFrameworkCount; ++f) {
    EXPECT_EQ(streaming.names.framework_by_jobs[f],
              batch->names.framework_by_jobs[f]);
  }
}

TEST(StreamingTest, GkQuantilesWithinEpsilonOfOracle) {
  const trace::Trace trace = GenerateWorkload("FB-2010", 20000);
  const trace::ColumnarTraceView view = ViewOf(trace);
  StreamingOptions options;
  options.quantile_epsilon = 0.005;
  const StreamingReport streaming = StreamAll(view, options);

  auto check = [&](const StreamingQuantiles& got,
                   std::vector<double> column) {
    stats::SortedStats oracle(std::move(column));
    const double n = static_cast<double>(oracle.count());
    const auto rank_of = [&](double value, double p) {
      const auto& sorted = oracle.sorted();
      const double lo = static_cast<double>(
          std::lower_bound(sorted.begin(), sorted.end(), value) -
          sorted.begin());
      const double hi = static_cast<double>(
          std::upper_bound(sorted.begin(), sorted.end(), value) -
          sorted.begin());
      const double target = 1.0 + p * (n - 1.0);
      const double margin = options.quantile_epsilon * n + 1.0;
      EXPECT_LE(lo + 1.0, target + margin) << "p=" << p;
      EXPECT_GE(hi, target - margin) << "p=" << p;
    };
    rank_of(got.p25, 0.25);
    rank_of(got.p50, 0.50);
    rank_of(got.p75, 0.75);
    rank_of(got.p90, 0.90);
    rank_of(got.p99, 0.99);
  };
  auto column = [&](Span<const double> span) {
    return std::vector<double>(span.begin(), span.end());
  };
  check(streaming.input_bytes, column(view.input_bytes()));
  check(streaming.shuffle_bytes, column(view.shuffle_bytes()));
  check(streaming.output_bytes, column(view.output_bytes()));
  check(streaming.duration, column(view.durations()));
}

TEST(StreamingTest, ByteIdenticalAcrossThreadCounts) {
  const trace::Trace trace = GenerateWorkload("CC-b", 150000);
  const trace::ColumnarTraceView view = ViewOf(trace);
  StreamingOptions serial;
  serial.threads = 1;
  StreamingOptions wide;
  wide.threads = 8;
  const std::string a = FormatStreamingReport(StreamAll(view, serial));
  const std::string b = FormatStreamingReport(StreamAll(view, wide));
  EXPECT_EQ(a, b);
}

TEST(StreamingTest, IncrementalMatchesOneShotExactStages) {
  const trace::Trace trace = GenerateWorkload("CC-b", 9000);
  const trace::ColumnarTraceView view = ViewOf(trace);
  const StreamingReport one_shot = StreamAll(view);

  StreamingAnalyzer incremental;
  size_t at = 0;
  // Uneven batch sizes, as a follower would produce.
  for (size_t step : {1u, 137u, 4000u, 2u, 4860u}) {
    const size_t end = std::min(view.job_count(), at + step);
    ASSERT_TRUE(incremental.ObserveColumns(view, at, end).ok());
    at = end;
  }
  ASSERT_EQ(at, view.job_count());
  auto report = incremental.Report(&view);
  ASSERT_TRUE(report.ok());

  // Exact stages are running scalar accumulations in row order: batching
  // cannot change them.
  EXPECT_EQ(report->summary.bytes_moved, one_shot.summary.bytes_moved);
  EXPECT_EQ(report->summary.span_seconds, one_shot.summary.span_seconds);
  EXPECT_EQ(report->reaccess_fractions.input_reaccess,
            one_shot.reaccess_fractions.input_reaccess);
  EXPECT_EQ(report->reaccess_fractions.output_reaccess,
            one_shot.reaccess_fractions.output_reaccess);
  EXPECT_EQ(report->input_popularity.zipf.slope,
            one_shot.input_popularity.zipf.slope);
  EXPECT_EQ(report->correlations.bytes_task_seconds,
            one_shot.correlations.bytes_task_seconds);
  EXPECT_EQ(report->diurnal_strength, one_shot.diurnal_strength);
  EXPECT_EQ(report->fraction_under_10gb, one_shot.fraction_under_10gb);
  // GK answers may differ across batchings but stay within epsilon of each
  // other's rank window (both are within eps of the truth).
  EXPECT_NEAR(report->duration.p50, one_shot.duration.p50,
              0.05 * one_shot.duration.p50 + 1.0);
}

TEST(StreamingTest, JobsModeMatchesColumnarModeExactStages) {
  const trace::Trace trace = GenerateWorkload("CC-b", 8000);
  const trace::ColumnarTraceView view = ViewOf(trace);
  const StreamingReport columnar = StreamAll(view);

  StreamingAnalyzer from_rows;
  from_rows.SetMetadata(trace.metadata());
  ASSERT_TRUE(from_rows
                  .ObserveJobs(Span<const trace::JobRecord>(
                      trace.jobs().data(), trace.jobs().size()))
                  .ok());
  auto report = from_rows.Report();
  ASSERT_TRUE(report.ok());

  EXPECT_EQ(report->summary.bytes_moved, columnar.summary.bytes_moved);
  EXPECT_EQ(report->reaccess_fractions.input_reaccess,
            columnar.reaccess_fractions.input_reaccess);
  EXPECT_EQ(report->input_popularity.zipf.slope,
            columnar.input_popularity.zipf.slope);
  ASSERT_EQ(report->names.words.size(), columnar.names.words.size());
  for (size_t i = 0; i < report->names.words.size(); ++i) {
    ASSERT_EQ(report->names.words[i].word, columnar.names.words[i].word);
  }
  // Both modes emit identical formatted output (modulo nothing: the
  // sketches saw the same values in the same chunk layout).
  EXPECT_EQ(FormatStreamingReport(*report), FormatStreamingReport(columnar));
}

TEST(StreamingTest, RejectedBatchLeavesAnalyzerUntouched) {
  const trace::Trace trace = GenerateWorkload("CC-b", 1000);
  const trace::ColumnarTraceView view = ViewOf(trace);
  StreamingAnalyzer analyzer;
  ASSERT_TRUE(analyzer.ObserveColumns(view, 0, 500).ok());
  const std::string before =
      FormatStreamingReport(*analyzer.Report(&view));

  // Re-observing rows 0..500 violates submit monotonicity (they precede
  // the consumed mark) and must be rejected wholesale.
  auto status = analyzer.ObserveColumns(view, 0, 500);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(analyzer.jobs_observed(), 500u);
  EXPECT_EQ(FormatStreamingReport(*analyzer.Report(&view)), before);

  // A NaN row is caught in the validation pre-pass.
  trace::Trace bad = Prefix(trace, 0);
  trace::JobRecord poison = trace.jobs()[999];
  poison.input_bytes = std::nan("");
  bad.AddJob(poison);
  StreamingAnalyzer fresh;
  auto bad_status = fresh.ObserveJobs(Span<const trace::JobRecord>(
      bad.jobs().data(), bad.jobs().size()));
  EXPECT_FALSE(bad_status.ok());
  EXPECT_EQ(fresh.jobs_observed(), 0u);
}

TEST(StreamingTest, EmptyReportIsAnError) {
  StreamingAnalyzer analyzer;
  EXPECT_FALSE(analyzer.Report().ok());
}

// --- Follow mode: STF1 ----------------------------------------------------

TEST(FollowTest, Stf1GrowthIsConsumedIncrementally) {
  const trace::Trace full = GenerateWorkload("CC-b", 6000);
  const std::string path = WriteTempFile(
      "follow_grow.stf1", trace::TraceToColumnarBytes(Prefix(full, 2000)));

  auto follower = TraceFollower::Open(path);
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();
  auto first = follower->Poll();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->new_jobs, 2000u);

  // Grow the snapshot (the producer pattern: rewrite with more rows).
  WriteTempFile("follow_grow.stf1",
                trace::TraceToColumnarBytes(Prefix(full, 6000)));
  auto second = follower->Poll();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->new_jobs, 4000u);
  EXPECT_EQ(second->total_jobs, 6000u);

  // No growth -> a no-op poll.
  auto third = follower->Poll();
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->new_jobs, 0u);

  // The incrementally-built report matches a one-shot stream of the full
  // trace on its exact stages.
  const StreamingReport one_shot = StreamAll(ViewOf(full));
  auto report = follower->Report();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->summary.bytes_moved, one_shot.summary.bytes_moved);
  EXPECT_EQ(report->reaccess_fractions.input_reaccess,
            one_shot.reaccess_fractions.input_reaccess);
  EXPECT_EQ(report->input_popularity.zipf.slope,
            one_shot.input_popularity.zipf.slope);
}

TEST(FollowTest, Stf1ShrinkIsAnError) {
  const trace::Trace full = GenerateWorkload("CC-b", 3000);
  const std::string path = WriteTempFile(
      "follow_shrink.stf1", trace::TraceToColumnarBytes(full));
  auto follower = TraceFollower::Open(path);
  ASSERT_TRUE(follower.ok());
  ASSERT_TRUE(follower->Poll().ok());
  WriteTempFile("follow_shrink.stf1",
                trace::TraceToColumnarBytes(Prefix(full, 1000)));
  auto poll = follower->Poll();
  EXPECT_FALSE(poll.ok());
  EXPECT_EQ(follower->jobs_consumed(), 3000u);  // analyzer untouched
}

TEST(FollowTest, Stf1PrefixMutationIsAnError) {
  const trace::Trace full = GenerateWorkload("CC-b", 3000);
  const std::string path = WriteTempFile(
      "follow_mutate.stf1", trace::TraceToColumnarBytes(Prefix(full, 2000)));
  auto follower = TraceFollower::Open(path);
  ASSERT_TRUE(follower.ok());
  ASSERT_TRUE(follower->Poll().ok());

  // "Grow" with a file whose consumed prefix differs: shift every submit
  // time. The spot checks must refuse it.
  trace::Trace shifted;
  shifted.mutable_metadata() = full.metadata();
  for (size_t i = 0; i < full.size(); ++i) {
    trace::JobRecord job = full.jobs()[i];
    job.submit_time += 1.0;
    shifted.AddJob(job);
  }
  WriteTempFile("follow_mutate.stf1", trace::TraceToColumnarBytes(shifted));
  auto poll = follower->Poll();
  EXPECT_FALSE(poll.ok());
  EXPECT_EQ(follower->jobs_consumed(), 2000u);
}

TEST(FollowTest, Stf1MutatorFuzzNeverPoisonsTheAnalyzer) {
  // Corrupt the grown snapshot 200 ways; every poll must either error
  // cleanly or consume valid rows, and after restoring the good file the
  // follower must converge to the same exact-stage state as an untouched
  // one-shot run — corruption can delay the tail but never taint it.
  const trace::Trace full = GenerateWorkload("CC-b", 2500);
  const std::string good_half =
      trace::TraceToColumnarBytes(Prefix(full, 1500));
  const std::string good_full = trace::TraceToColumnarBytes(full);
  const trace::Stf1Mutator mutator(2026);
  const std::string path = WriteTempFile("follow_fuzz.stf1", good_half);

  auto follower = TraceFollower::Open(path);
  ASSERT_TRUE(follower.ok());
  ASSERT_TRUE(follower->Poll().ok());
  ASSERT_EQ(follower->jobs_consumed(), 1500u);

  size_t clean_errors = 0;
  for (uint64_t iteration = 0; iteration < 200; ++iteration) {
    WriteTempFile("follow_fuzz.stf1",
                  mutator.Mutate(good_full, iteration));
    auto poll = follower->Poll();
    if (!poll.ok()) ++clean_errors;
    // Whatever happened, consumed never regresses and never exceeds the
    // full trace.
    ASSERT_GE(follower->jobs_consumed(), 1500u);
    ASSERT_LE(follower->jobs_consumed(), full.size());
    if (follower->jobs_consumed() == full.size()) break;
  }
  // Restore the pristine full file; the follower finishes the job.
  WriteTempFile("follow_fuzz.stf1", good_full);
  auto final_poll = follower->Poll();
  ASSERT_TRUE(final_poll.ok()) << final_poll.status().ToString();
  EXPECT_EQ(follower->jobs_consumed(), full.size());
  EXPECT_GT(clean_errors, 0u);  // the mutator did land corruption

  const StreamingReport one_shot = StreamAll(ViewOf(full));
  auto report = follower->Report();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->summary.bytes_moved, one_shot.summary.bytes_moved);
  EXPECT_EQ(report->reaccess_fractions.input_reaccess,
            one_shot.reaccess_fractions.input_reaccess);
  EXPECT_EQ(report->input_popularity.zipf.slope,
            one_shot.input_popularity.zipf.slope);
}

// --- Follow mode: CSV -----------------------------------------------------

TEST(FollowTest, CsvAppendsAreConsumedIncrementally) {
  const trace::Trace full = GenerateWorkload("CC-b", 4000);
  const std::string csv = trace::TraceToCsv(full);
  // Split at a line boundary near the middle.
  const size_t half = csv.find('\n', csv.size() / 2) + 1;
  const std::string path =
      WriteTempFile("follow_grow.csv", csv.substr(0, half));

  auto follower = TraceFollower::Open(path);
  ASSERT_TRUE(follower.ok());
  auto first = follower->Poll();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GT(first->new_jobs, 0u);
  EXPECT_LT(first->new_jobs, full.size());

  AppendToFile(path, csv.substr(half));
  auto second = follower->Poll();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->total_jobs, full.size());

  const StreamingReport one_shot = StreamAll(ViewOf(full));
  auto report = follower->Report();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->summary.bytes_moved, one_shot.summary.bytes_moved);
  EXPECT_EQ(report->reaccess_fractions.input_reaccess,
            one_shot.reaccess_fractions.input_reaccess);
}

TEST(FollowTest, CsvHalfFlushedLineWaitsForCompletion) {
  const trace::Trace full = GenerateWorkload("CC-b", 100);
  const std::string csv = trace::TraceToCsv(full);
  const size_t last_line_start = csv.rfind('\n', csv.size() - 2) + 1;
  // Write everything except the tail of the final record.
  const std::string path = WriteTempFile(
      "follow_torn.csv", csv.substr(0, last_line_start + 10));
  auto follower = TraceFollower::Open(path);
  ASSERT_TRUE(follower.ok());
  auto first = follower->Poll();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->total_jobs, 99u);  // the torn row is not consumed
  // Complete the record; the next poll picks it up.
  AppendToFile(path, csv.substr(last_line_start + 10));
  auto second = follower->Poll();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->new_jobs, 1u);
  EXPECT_EQ(second->total_jobs, 100u);
}

TEST(FollowTest, CsvShrinkIsAnError) {
  const trace::Trace full = GenerateWorkload("CC-b", 200);
  const std::string csv = trace::TraceToCsv(full);
  const std::string path = WriteTempFile("follow_csvshrink.csv", csv);
  auto follower = TraceFollower::Open(path);
  ASSERT_TRUE(follower.ok());
  ASSERT_TRUE(follower->Poll().ok());
  WriteTempFile("follow_csvshrink.csv", csv.substr(0, csv.size() / 2));
  EXPECT_FALSE(follower->Poll().ok());
  EXPECT_EQ(follower->jobs_consumed(), 200u);
}

TEST(FollowTest, OutOfOrderCsvAppendIsAnError) {
  const trace::Trace full = GenerateWorkload("CC-b", 500);
  const std::string csv = trace::TraceToCsv(full);
  const std::string path = WriteTempFile("follow_ooo.csv", csv);
  auto follower = TraceFollower::Open(path);
  ASSERT_TRUE(follower.ok());
  ASSERT_TRUE(follower->Poll().ok());
  // Append a row whose submit time precedes the consumed stream.
  trace::Trace tail;
  tail.mutable_metadata() = full.metadata();
  trace::JobRecord early = full.jobs()[0];
  early.job_id = 999999;
  tail.AddJob(early);
  std::string tail_csv = trace::TraceToCsv(tail);
  // Keep only the data row (drop comments + header).
  const size_t header_end =
      tail_csv.find('\n', tail_csv.find("job_id,")) + 1;
  AppendToFile(path, tail_csv.substr(header_end));
  EXPECT_FALSE(follower->Poll().ok());
  EXPECT_EQ(follower->jobs_consumed(), 500u);
}

}  // namespace
}  // namespace swim::core

#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/analysis/workload_report.h"
#include "gtest/gtest.h"
#include "stats/kmeans.h"
#include "trace/trace_io.h"
#include "workloads/paper_workloads.h"
#include "workloads/trace_generator.h"

namespace swim {
namespace {

// --- ParallelFor / Submit mechanics ------------------------------------

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr size_t kN = 10000;
  std::vector<int> hits(kN, 0);
  ParallelFor(
      0, kN, 64,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) ++hits[i];
      },
      4);
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  std::atomic<int> calls{0};
  ParallelFor(5, 5, 8, [&](size_t, size_t) { ++calls; }, 4);
  ParallelFor(7, 3, 8, [&](size_t, size_t) { ++calls; }, 4);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, GrainLargerThanRangeIsOneChunk) {
  std::vector<std::pair<size_t, size_t>> chunks;
  std::mutex mu;
  ParallelFor(
      10, 17, 1000,
      [&](size_t lo, size_t hi) {
        std::lock_guard<std::mutex> lock(mu);
        chunks.emplace_back(lo, hi);
      },
      4);
  ASSERT_EQ(chunks.size(), 1u);
  const std::pair<size_t, size_t> whole_range(10, 17);
  EXPECT_EQ(chunks[0], whole_range);
}

TEST(ParallelForTest, ZeroGrainTreatedAsOne) {
  std::atomic<size_t> total{0};
  ParallelFor(0, 100, 0, [&](size_t lo, size_t hi) { total += hi - lo; }, 2);
  EXPECT_EQ(total.load(), 100u);
}

TEST(ParallelForTest, ChunkBoundariesIndependentOfThreadCount) {
  auto boundaries = [](int threads) {
    std::set<std::pair<size_t, size_t>> chunks;
    std::mutex mu;
    ParallelFor(
        3, 1003, 64,
        [&](size_t lo, size_t hi) {
          std::lock_guard<std::mutex> lock(mu);
          chunks.emplace(lo, hi);
        },
        threads);
    return chunks;
  };
  auto serial = boundaries(1);
  EXPECT_EQ(serial, boundaries(2));
  EXPECT_EQ(serial, boundaries(8));
  EXPECT_EQ(serial.size(), (1000u + 63) / 64);
}

TEST(ParallelForTest, ExceptionsPropagateToCaller) {
  EXPECT_THROW(
      ParallelFor(
          0, 1000, 10,
          [&](size_t lo, size_t) {
            if (lo >= 500) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
  // Serial path too.
  EXPECT_THROW(
      ParallelFor(
          0, 10, 1, [&](size_t, size_t) { throw std::runtime_error("boom"); },
          1),
      std::runtime_error);
}

TEST(ParallelForTest, NestedCallsDoNotDeadlock) {
  std::atomic<size_t> total{0};
  ParallelFor(
      0, 16, 1,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          ParallelFor(
              0, 100, 7, [&](size_t a, size_t b) { total += b - a; }, 4);
        }
      },
      4);
  EXPECT_EQ(total.load(), 1600u);
}

TEST(ThreadPoolTest, SubmitReturnsValues) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionsThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(RunConcurrentlyTest, RunsEveryTaskOnce) {
  std::vector<int> ran(20, 0);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 20; ++i) tasks.push_back([&ran, i]() { ++ran[i]; });
  RunConcurrently(tasks, 4);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ran[i], 1);
}

TEST(ParallelismTest, ResolveAndEnvOverride) {
  EXPECT_GE(DefaultParallelism(), 1);
  EXPECT_EQ(ResolveParallelism(5), 5);
  EXPECT_EQ(ResolveParallelism(0), DefaultParallelism());
  EXPECT_EQ(ResolveParallelism(kMaxParallelism + 100), kMaxParallelism);

  const char* old = std::getenv("SWIM_THREADS");
  std::string saved = old ? old : "";
  ::setenv("SWIM_THREADS", "3", 1);
  EXPECT_EQ(DefaultParallelism(), 3);
  ::setenv("SWIM_THREADS", "not-a-number", 1);
  EXPECT_GE(DefaultParallelism(), 1);  // falls back to hardware
  if (old) {
    ::setenv("SWIM_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("SWIM_THREADS");
  }
}

// --- Determinism: identical results at 1 vs N threads -------------------

trace::Trace TestTrace(size_t jobs) {
  auto spec = workloads::PaperWorkloadByName("FB-2009");
  EXPECT_TRUE(spec.ok());
  workloads::GeneratorOptions options;
  options.seed = 42;
  options.job_count_override = jobs;
  auto trace = workloads::GenerateTrace(*spec, options);
  EXPECT_TRUE(trace.ok());
  return *std::move(trace);
}

TEST(ParallelDeterminismTest, AnalyzeWorkloadMatchesSerial) {
  trace::Trace trace = TestTrace(3000);
  core::AnalysisOptions serial;
  serial.threads = 1;
  auto a = core::AnalyzeWorkload(trace, serial);
  ASSERT_TRUE(a.ok());
  for (int threads : {2, 8}) {
    core::AnalysisOptions parallel;
    parallel.threads = threads;
    auto b = core::AnalyzeWorkload(trace, parallel);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(core::FormatReport(*a), core::FormatReport(*b))
        << "threads=" << threads;
    // Spot-check raw doubles bit-exactly, beyond the formatted rendering.
    EXPECT_EQ(a->correlations.jobs_bytes, b->correlations.jobs_bytes);
    EXPECT_EQ(a->correlations.bytes_task_seconds,
              b->correlations.bytes_task_seconds);
    EXPECT_EQ(a->diurnal_strength, b->diurnal_strength);
    EXPECT_EQ(a->burstiness.jobs.PeakToMedian(),
              b->burstiness.jobs.PeakToMedian());
    EXPECT_EQ(a->classes.k, b->classes.k);
    EXPECT_EQ(a->classes.largest_class_fraction,
              b->classes.largest_class_fraction);
    EXPECT_EQ(a->classes.elbow_residuals, b->classes.elbow_residuals);
  }
}

TEST(ParallelDeterminismTest, KMeansFitMatchesSerial) {
  // > kPointGrain points so the assignment pass really chunks.
  Pcg32 rng(7);
  std::vector<std::vector<double>> points;
  const double centers[4][3] = {
      {0, 0, 0}, {10, 0, 5}, {0, 12, -4}, {-8, -8, 8}};
  for (int blob = 0; blob < 4; ++blob) {
    for (int i = 0; i < 1500; ++i) {
      points.push_back({centers[blob][0] + rng.NextGaussian(),
                        centers[blob][1] + rng.NextGaussian(),
                        centers[blob][2] + rng.NextGaussian()});
    }
  }
  stats::KMeansOptions serial;
  serial.seed = 99;
  serial.restarts = 4;
  serial.threads = 1;
  auto a = stats::KMeansFit(points, 4, serial);
  ASSERT_TRUE(a.ok());
  for (int threads : {2, 8}) {
    stats::KMeansOptions parallel = serial;
    parallel.threads = threads;
    auto b = stats::KMeansFit(points, 4, parallel);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->centroids, b->centroids) << "threads=" << threads;
    EXPECT_EQ(a->assignments, b->assignments);
    EXPECT_EQ(a->sizes, b->sizes);
    EXPECT_EQ(a->residual_variance, b->residual_variance);
    EXPECT_EQ(a->iterations, b->iterations);
    EXPECT_EQ(a->converged, b->converged);
  }
}

TEST(ParallelDeterminismTest, TraceFromCsvMatchesSerial) {
  trace::Trace trace = TestTrace(9000);  // > kShardLines, spans 3 shards
  trace.mutable_metadata().name = "det-test";
  trace.mutable_metadata().machines = 600;
  std::string csv = trace::TraceToCsv(trace);
  auto a = trace::TraceFromCsv(csv, 1);
  ASSERT_TRUE(a.ok());
  for (int threads : {2, 8}) {
    auto b = trace::TraceFromCsv(csv, threads);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->jobs(), b->jobs()) << "threads=" << threads;
    EXPECT_EQ(a->metadata().name, b->metadata().name);
    EXPECT_EQ(a->metadata().machines, b->metadata().machines);
  }
  EXPECT_EQ(a->size(), trace.size());
}

TEST(ParallelDeterminismTest, CsvErrorLineNumbersMatchSerial) {
  // Build a CSV whose single malformed row sits deep in the second shard,
  // then check every thread count reports exactly the same line.
  std::string csv = std::string(trace::kTraceCsvHeader) + "\n";
  const std::string good = "1,n,0,1,5,0,1,1,0,1,0,a,b\n";
  const int kRows = 9000;
  const int kBadRow = 6543;
  for (int i = 0; i < kRows; ++i) {
    if (i == kBadRow) {
      csv += "1,n,zero,1,5,0,1,1,0,1,0,a,b\n";
    } else {
      csv += good;
    }
  }
  auto serial = trace::TraceFromCsv(csv, 1);
  ASSERT_FALSE(serial.ok());
  const std::string expected_line =
      "line " + std::to_string(kBadRow + 2);  // +1 header, +1 one-based
  EXPECT_NE(serial.status().message().find(expected_line), std::string::npos)
      << serial.status().message();
  for (int threads : {2, 8}) {
    auto parallel = trace::TraceFromCsv(csv, threads);
    ASSERT_FALSE(parallel.ok());
    EXPECT_EQ(serial.status().message(), parallel.status().message())
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, QuotedFieldsSurviveShardedParse) {
  trace::Trace trace;
  for (int i = 0; i < 200; ++i) {
    trace::JobRecord job;
    job.job_id = i + 1;
    job.name = "INSERT \"t" + std::to_string(i) + "\", partition=a,b";
    job.submit_time = i;
    job.duration = 10;
    job.input_bytes = 100;
    job.map_tasks = 1;
    job.map_task_seconds = 5;
    job.input_path = "in,quoted/" + std::to_string(i);
    job.output_path = "out";
    trace.AddJob(job);
  }
  std::string csv = trace::TraceToCsv(trace);
  auto a = trace::TraceFromCsv(csv, 1);
  auto b = trace::TraceFromCsv(csv, 8);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->jobs(), b->jobs());
  EXPECT_EQ(a->jobs(), trace.jobs());
}

}  // namespace
}  // namespace swim

#include <cstdio>
#include <string>

#include "common/units.h"
#include "core/analysis/workload_report.h"
#include "core/synth/fidelity.h"
#include "core/synth/scale_down.h"
#include "core/synth/synthesizer.h"
#include "core/synth/workload_model.h"
#include "gtest/gtest.h"
#include "sim/replay.h"
#include "storage/access_stream.h"
#include "storage/cache.h"
#include "trace/trace_io.h"
#include "workloads/paper_workloads.h"
#include "workloads/trace_generator.h"

namespace swim {
namespace {

/// End-to-end: the full pipeline a downstream user runs - generate a
/// calibrated workload, persist it, analyze it, fit a model, synthesize a
/// replica, and replay both on the simulated cluster.
TEST(IntegrationTest, GenerateAnalyzeSynthesizeReplay) {
  auto spec = workloads::PaperWorkloadByName("CC-e");
  ASSERT_TRUE(spec.ok());
  workloads::GeneratorOptions gen_options;
  gen_options.job_count_override = 5000;
  gen_options.seed = 99;
  auto source = workloads::GenerateTrace(*spec, gen_options);
  ASSERT_TRUE(source.ok());

  // 1. CSV round trip through a file.
  std::string path = ::testing::TempDir() + "/swim_integration.csv";
  ASSERT_TRUE(trace::WriteTraceCsv(*source, path).ok());
  auto loaded = trace::ReadTraceCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), source->size());
  std::remove(path.c_str());

  // 2. Full analysis pipeline.
  auto report = core::AnalyzeWorkload(*loaded);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->summary.jobs, 5000u);
  EXPECT_GT(report->classes.fraction_under_10gb, 0.85);
  EXPECT_GT(report->burstiness.task_seconds.PeakToMedian(), 2.0);

  // 3. Model + synthesis.
  auto model = core::BuildModel(*loaded);
  ASSERT_TRUE(model.ok());
  core::SynthesisOptions synth_options;
  synth_options.job_count = 5000;
  auto synth = core::SynthesizeTrace(*model, synth_options);
  ASSERT_TRUE(synth.ok());
  core::FidelityReport fidelity = core::CompareTraces(*loaded, *synth);
  EXPECT_LT(fidelity.max_ks, 0.1) << core::FormatFidelity(fidelity);

  // 4. Replay source and synthetic on the same cluster; aggregate load
  // must be comparable.
  sim::ReplayOptions replay_options;
  replay_options.cluster.nodes = 100;
  replay_options.scheduler = "fair";
  auto source_replay = sim::ReplayTrace(*loaded, replay_options);
  auto synth_replay = sim::ReplayTrace(*synth, replay_options);
  ASSERT_TRUE(source_replay.ok());
  ASSERT_TRUE(synth_replay.ok());
  EXPECT_EQ(source_replay->outcomes.size(), 5000u);
  EXPECT_EQ(synth_replay->outcomes.size(), 5000u);
  double source_busy = 0, synth_busy = 0;
  for (double o : source_replay->hourly_occupancy) source_busy += o;
  for (double o : synth_replay->hourly_occupancy) synth_busy += o;
  ASSERT_GT(source_busy, 0.0);
  EXPECT_NEAR(synth_busy / source_busy, 1.0, 0.35);
}

/// The cache-policy pipeline the paper's section 4 claims rest on.
TEST(IntegrationTest, CachePoliciesOnGeneratedWorkload) {
  auto spec = workloads::PaperWorkloadByName("CC-c");
  workloads::GeneratorOptions options;
  options.job_count_override = 8000;
  auto trace = workloads::GenerateTrace(*spec, options);
  ASSERT_TRUE(trace.ok());
  auto accesses = storage::ExtractAccesses(*trace);
  ASSERT_GT(accesses.size(), 8000u);

  storage::UnboundedCache unbounded;
  storage::ReplayAccesses(accesses, unbounded);
  double intrinsic = unbounded.stats().HitRate();
  // CC-c has ~78% combined re-access (Figure 6); the intrinsic hit rate of
  // an infinite cache should be in that neighborhood.
  EXPECT_GT(intrinsic, 0.5);

  storage::LruCache lru(10 * kTB);
  storage::ReplayAccesses(accesses, lru);
  EXPECT_GT(lru.stats().HitRate(), 0.3);
  EXPECT_LE(lru.stats().HitRate(), intrinsic + 1e-9);
}

/// Scaled-down replay: a 10x smaller cluster still completes a 10x
/// data-scaled workload with comparable utilization (the SWIM use case).
TEST(IntegrationTest, ScaledDownReplayCompletes) {
  auto spec = workloads::PaperWorkloadByName("CC-b");
  workloads::GeneratorOptions options;
  options.job_count_override = 2000;
  auto trace = workloads::GenerateTrace(*spec, options);
  ASSERT_TRUE(trace.ok());

  core::ScaleDownOptions scale;
  scale.data_factor = 0.1;
  auto scaled = core::ScaleDownTrace(*trace, scale);
  ASSERT_TRUE(scaled.ok());

  sim::ReplayOptions full_cluster;
  full_cluster.cluster.nodes = 300;
  sim::ReplayOptions small_cluster;
  small_cluster.cluster.nodes = 30;
  auto full = sim::ReplayTrace(*trace, full_cluster);
  auto small = sim::ReplayTrace(*scaled, small_cluster);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->outcomes.size(), full->outcomes.size());
}

}  // namespace
}  // namespace swim

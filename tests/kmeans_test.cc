#include <cmath>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "stats/kmeans.h"

namespace swim::stats {
namespace {

/// Three well-separated Gaussian blobs in 2D.
std::vector<std::vector<double>> ThreeBlobs(size_t per_blob, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::vector<double>> points;
  const double centers[3][2] = {{0, 0}, {10, 10}, {-10, 10}};
  for (int blob = 0; blob < 3; ++blob) {
    for (size_t i = 0; i < per_blob; ++i) {
      points.push_back({centers[blob][0] + 0.5 * rng.NextGaussian(),
                        centers[blob][1] + 0.5 * rng.NextGaussian()});
    }
  }
  return points;
}

TEST(KMeansTest, RecoversThreeBlobs) {
  auto points = ThreeBlobs(100, 1);
  auto result = KMeansFit(points, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->centroids.size(), 3u);
  // Every blob should map to exactly one cluster of size 100.
  std::vector<size_t> sizes = result->sizes;
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes[0], 100u);
  EXPECT_EQ(sizes[1], 100u);
  EXPECT_EQ(sizes[2], 100u);
  EXPECT_TRUE(result->converged);
}

TEST(KMeansTest, ResidualDecreasesWithK) {
  auto points = ThreeBlobs(50, 2);
  double previous = -1.0;
  for (int k = 1; k <= 4; ++k) {
    auto result = KMeansFit(points, k);
    ASSERT_TRUE(result.ok());
    if (previous >= 0.0) {
      EXPECT_LE(result->residual_variance, previous + 1e-9);
    }
    previous = result->residual_variance;
  }
}

TEST(KMeansTest, KEqualsNGivesZeroResidual) {
  std::vector<std::vector<double>> points = {{0, 0}, {1, 1}, {2, 2}};
  auto result = KMeansFit(points, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->residual_variance, 0.0, 1e-12);
}

TEST(KMeansTest, DeterministicForSameSeed) {
  auto points = ThreeBlobs(40, 3);
  KMeansOptions options;
  options.seed = 99;
  auto a = KMeansFit(points, 3, options);
  auto b = KMeansFit(points, 3, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
  EXPECT_EQ(a->residual_variance, b->residual_variance);
}

TEST(KMeansTest, RejectsBadArguments) {
  std::vector<std::vector<double>> points = {{1, 2}, {3, 4}};
  EXPECT_FALSE(KMeansFit({}, 1).ok());
  EXPECT_FALSE(KMeansFit(points, 0).ok());
  EXPECT_FALSE(KMeansFit(points, 3).ok());
  std::vector<std::vector<double>> ragged = {{1, 2}, {3}};
  EXPECT_FALSE(KMeansFit(ragged, 1).ok());
  std::vector<std::vector<double>> zero_dim = {{}, {}};
  EXPECT_FALSE(KMeansFit(zero_dim, 1).ok());
}

TEST(KMeansTest, HandlesDuplicatePoints) {
  std::vector<std::vector<double>> points(10, {1.0, 1.0});
  auto result = KMeansFit(points, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->residual_variance, 0.0, 1e-12);
}

TEST(ChooseKTest, FindsElbowAtThree) {
  auto points = ThreeBlobs(80, 5);
  auto chosen = ChooseKByElbow(points, 8, 0.25);
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(chosen->k, 3);
}

TEST(ChooseKTest, SingleClusterData) {
  Pcg32 rng(7);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 100; ++i) {
    points.push_back({rng.NextGaussian(), rng.NextGaussian()});
  }
  auto chosen = ChooseKByElbow(points, 6, 0.5);
  ASSERT_TRUE(chosen.ok());
  EXPECT_LE(chosen->k, 2);
}

TEST(ChooseKTest, RejectsBadMaxK) {
  std::vector<std::vector<double>> points = {{1.0}};
  EXPECT_FALSE(ChooseKByElbow(points, 0).ok());
}

TEST(ChooseKTest, RejectsEmptyPoints) {
  // Used to return ChooseKResult{k=0} as success; must fail like KMeansFit.
  std::vector<std::vector<double>> points;
  auto chosen = ChooseKByElbow(points, 4);
  ASSERT_FALSE(chosen.ok());
  EXPECT_FALSE(KMeansFit(points, 1).ok());
}

TEST(StandardizeTest, ZeroMeanUnitVariance) {
  std::vector<std::vector<double>> points = {{1, 100}, {2, 200}, {3, 300}};
  ColumnScaling scaling = StandardizeColumns(points);
  double mean0 = (points[0][0] + points[1][0] + points[2][0]) / 3.0;
  EXPECT_NEAR(mean0, 0.0, 1e-12);
  EXPECT_NEAR(scaling.mean[1], 200.0, 1e-12);
  // Round trip.
  std::vector<double> restored = UnstandardizeRow(points[2], scaling);
  EXPECT_NEAR(restored[0], 3.0, 1e-12);
  EXPECT_NEAR(restored[1], 300.0, 1e-12);
}

TEST(StandardizeTest, ConstantColumnLeftCentered) {
  std::vector<std::vector<double>> points = {{5, 1}, {5, 2}, {5, 3}};
  ColumnScaling scaling = StandardizeColumns(points);
  EXPECT_DOUBLE_EQ(scaling.stddev[0], 0.0);
  for (const auto& p : points) EXPECT_DOUBLE_EQ(p[0], 0.0);
  std::vector<double> restored = UnstandardizeRow(points[0], scaling);
  EXPECT_DOUBLE_EQ(restored[0], 5.0);
}

}  // namespace
}  // namespace swim::stats

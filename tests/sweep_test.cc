// Tests for the parallel sweep driver (sim/sweep.h): results must come
// back in configuration order, bit-identical at any worker-lane count
// (SWIM_THREADS), with per-cell errors isolated to their slot.
#include <atomic>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sim/sweep.h"
#include "trace/trace.h"

namespace swim::sim {
namespace {

trace::Trace MixedTrace(size_t jobs) {
  trace::Trace t;
  for (size_t i = 0; i < jobs; ++i) {
    trace::JobRecord job;
    job.job_id = i + 1;
    job.submit_time = static_cast<double>(i) * 7.0;
    job.map_tasks = 1 + static_cast<int64_t>(i % 5);
    job.map_task_seconds = 40.0 + static_cast<double>(i % 13) * 10.0;
    job.reduce_tasks = static_cast<int64_t>(i % 3);
    job.reduce_task_seconds = job.reduce_tasks > 0 ? 30.0 : 0.0;
    // Mix of small and large jobs so two-tier has both tiers populated.
    job.input_bytes = (i % 4 == 0) ? 1e12 : 1e6;
    job.duration = 60.0;
    t.AddJob(std::move(job));
  }
  return t;
}

void ExpectIdentical(const ReplayResult& a, const ReplayResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].job_id, b.outcomes[i].job_id);
    // Exact float equality on purpose: the contract is bit-identity.
    EXPECT_EQ(a.outcomes[i].latency, b.outcomes[i].latency);
    EXPECT_EQ(a.outcomes[i].retries, b.outcomes[i].retries);
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.hourly_occupancy, b.hourly_occupancy);
  EXPECT_EQ(a.unfinished_jobs, b.unfinished_jobs);
  EXPECT_EQ(a.failures.task_failures, b.failures.task_failures);
  EXPECT_EQ(a.failures.retries, b.failures.retries);
  EXPECT_EQ(a.failures.failed_task_seconds, b.failures.failed_task_seconds);
}

TEST(SweepGridTest, EmitsRowMajorCrossProductWithLabels) {
  trace::Trace t = MixedTrace(5);
  ReplayOptions base;
  base.straggler_probability = 0.1;
  std::vector<SweepConfig> grid =
      SweepGrid(t, base, {"fifo", "fair"}, {10, 20}, {1, 2});
  ASSERT_EQ(grid.size(), 8u);
  EXPECT_EQ(grid[0].label, "fifo/n10/s1");
  EXPECT_EQ(grid[1].label, "fifo/n10/s2");
  EXPECT_EQ(grid[2].label, "fifo/n20/s1");
  EXPECT_EQ(grid[4].label, "fair/n10/s1");
  EXPECT_EQ(grid[7].label, "fair/n20/s2");
  for (const SweepConfig& config : grid) {
    EXPECT_EQ(config.trace, &t);
    // Base options carry through to every cell.
    EXPECT_DOUBLE_EQ(config.options.straggler_probability, 0.1);
  }
  EXPECT_EQ(grid[5].options.scheduler, "fair");
  EXPECT_EQ(grid[5].options.cluster.nodes, 10);
  EXPECT_EQ(grid[5].options.seed, 2u);
}

TEST(SweepTest, MatchesSerialReplayInConfigOrder) {
  trace::Trace t = MixedTrace(120);
  ReplayOptions base;
  base.cluster.nodes = 3;
  base.straggler_probability = 0.15;
  base.failures.task_failure_probability = 0.05;
  std::vector<SweepConfig> grid =
      SweepGrid(t, base, {"fifo", "fair", "two-tier"}, {2, 3}, {19, 23});
  std::vector<StatusOr<ReplayResult>> swept = RunSweep(grid);
  ASSERT_EQ(swept.size(), grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    ASSERT_TRUE(swept[i].ok()) << grid[i].label;
    auto serial = ReplayTrace(*grid[i].trace, grid[i].options);
    ASSERT_TRUE(serial.ok()) << grid[i].label;
    ExpectIdentical(*swept[i], *serial);
  }
}

TEST(SweepTest, BitIdenticalAcrossLaneCounts) {
  // The SWIM_THREADS determinism contract, pinned at both extremes the
  // ISSUE names: 1 lane (fully serial) and 8 lanes.
  trace::Trace t = MixedTrace(150);
  ReplayOptions base;
  base.cluster.nodes = 4;
  base.straggler_probability = 0.2;
  base.failures.task_failure_probability = 0.1;
  base.failures.node_loss_per_hour = 0.5;
  std::vector<SweepConfig> grid =
      SweepGrid(t, base, {"fair", "two-tier"}, {2, 4}, {19, 31, 47});
  std::vector<StatusOr<ReplayResult>> lanes1 =
      RunSweep(grid, /*max_parallelism=*/1);
  std::vector<StatusOr<ReplayResult>> lanes8 =
      RunSweep(grid, /*max_parallelism=*/8);
  ASSERT_EQ(lanes1.size(), grid.size());
  ASSERT_EQ(lanes8.size(), grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    ASSERT_TRUE(lanes1[i].ok()) << grid[i].label;
    ASSERT_TRUE(lanes8[i].ok()) << grid[i].label;
    ExpectIdentical(*lanes1[i], *lanes8[i]);
  }
}

TEST(SweepTest, SeedAxisActuallyChangesFailureDraws) {
  trace::Trace t = MixedTrace(200);
  ReplayOptions base;
  base.cluster.nodes = 2;
  base.failures.task_failure_probability = 0.2;
  std::vector<SweepConfig> grid =
      SweepGrid(t, base, {"fair"}, {2}, {1, 2, 3, 4});
  std::vector<StatusOr<ReplayResult>> results = RunSweep(grid);
  // Not all four seeds should produce the same failure count (the RNG
  // streams must be derived from the per-cell seed, not shared).
  bool any_differs = false;
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    if (results[i]->failures.task_failures !=
        results[0]->failures.task_failures) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(SweepTest, BadCellErrorsStayInTheirSlot) {
  trace::Trace t = MixedTrace(20);
  ReplayOptions good;
  good.cluster.nodes = 2;
  std::vector<SweepConfig> configs(3);
  configs[0] = {"good", &t, good};
  configs[1].label = "no-trace";  // trace left null
  configs[2] = {"bad-options", &t, good};
  configs[2].options.failures.max_attempts = 0;  // rejected by validation
  std::vector<StatusOr<ReplayResult>> results = RunSweep(configs);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_FALSE(results[2].ok());
  EXPECT_EQ(results[0]->outcomes.size(), 20u);
}

TEST(SweepTest, EmptySweepReturnsEmpty) {
  EXPECT_TRUE(RunSweep({}).empty());
}

TEST(SweepTest, TemplateSweepMatchesPerConfigReplayAtEveryLaneCount) {
  // The ISSUE 6 pin: the template+arena sweep path vs a fresh
  // per-configuration ReplayTrace, bit-identical at 1, 4, and 8 lanes.
  trace::Trace t = MixedTrace(130);
  ReplayOptions base;
  base.cluster.nodes = 3;
  base.straggler_probability = 0.1;
  base.failures.task_failure_probability = 0.08;
  std::vector<SweepConfig> grid =
      SweepGrid(t, base, {"fifo", "fair", "two-tier"}, {2, 4}, {5, 11});
  std::vector<StatusOr<ReplayResult>> oracle;
  oracle.reserve(grid.size());
  for (const SweepConfig& config : grid) {
    oracle.push_back(ReplayTrace(*config.trace, config.options));
  }
  for (int lanes : {1, 4, 8}) {
    std::vector<StatusOr<ReplayResult>> swept = RunSweep(grid, lanes);
    ASSERT_EQ(swept.size(), oracle.size());
    for (size_t i = 0; i < grid.size(); ++i) {
      ASSERT_TRUE(swept[i].ok()) << grid[i].label << " lanes=" << lanes;
      ASSERT_TRUE(oracle[i].ok()) << grid[i].label;
      ExpectIdentical(*swept[i], *oracle[i]);
    }
  }
}

TEST(SweepTest, ProgressReportsEveryCellAndFinishesAtTotal) {
  trace::Trace t = MixedTrace(40);
  ReplayOptions base;
  base.cluster.nodes = 2;
  std::vector<SweepConfig> grid = SweepGrid(t, base, {"fifo", "fair"}, {2},
                                            {1, 2, 3, 4, 5, 6, 7, 8});
  SweepOptions sweep_options;
  sweep_options.max_parallelism = 4;
  std::atomic<size_t> calls{0};
  std::atomic<size_t> finals{0};
  std::atomic<bool> total_consistent{true};
  sweep_options.progress = [&](size_t done, size_t total) {
    calls.fetch_add(1);
    if (total != 16u || done == 0 || done > total) {
      total_consistent = false;
    }
    if (done == total) finals.fetch_add(1);
  };
  std::vector<StatusOr<ReplayResult>> results = RunSweep(grid, sweep_options);
  ASSERT_EQ(results.size(), 16u);
  EXPECT_EQ(calls.load(), 16u);   // once per completed cell
  EXPECT_EQ(finals.load(), 1u);   // exactly one (total, total) call
  EXPECT_TRUE(total_consistent.load());
}

TEST(SweepTest, SlaPoliciesBitIdenticalAcrossLaneCounts) {
  // The preemptive tier's determinism pin: srpt and deadline cells with
  // elephant preemption, admission control, and both failure modes active
  // must replay bit-identically at 1 lane and 8 lanes.
  trace::Trace t = MixedTrace(150);
  ReplayOptions base;
  base.cluster.nodes = 2;
  base.straggler_probability = 0.1;
  base.failures.task_failure_probability = 0.05;
  base.failures.node_loss_per_hour = 0.5;
  base.sla.preemption_budget = 100;
  base.sla.tenants = 3;
  base.sla.tenant_max_running = 2;
  std::vector<SweepConfig> grid =
      SweepGrid(t, base, {"srpt", "deadline"}, {2, 3}, {19, 47});
  std::vector<StatusOr<ReplayResult>> lanes1 =
      RunSweep(grid, /*max_parallelism=*/1);
  std::vector<StatusOr<ReplayResult>> lanes8 =
      RunSweep(grid, /*max_parallelism=*/8);
  ASSERT_EQ(lanes1.size(), grid.size());
  ASSERT_EQ(lanes8.size(), grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    ASSERT_TRUE(lanes1[i].ok()) << grid[i].label;
    ASSERT_TRUE(lanes8[i].ok()) << grid[i].label;
    ExpectIdentical(*lanes1[i], *lanes8[i]);
    // The SLA accounting agrees across lane counts too.
    EXPECT_EQ(lanes1[i]->sla.preempted_tasks, lanes8[i]->sla.preempted_tasks);
    EXPECT_EQ(lanes1[i]->sla.admission_parked_jobs,
              lanes8[i]->sla.admission_parked_jobs);
    EXPECT_EQ(lanes1[i]->sla.small_misses, lanes8[i]->sla.small_misses);
  }
}

TEST(SweepTest, UnknownPolicyCellErrorsStayInTheirSlot) {
  // A typo'd policy must fail its own cell with the factory's hard error,
  // not silently replay as FIFO or poison its neighbors.
  trace::Trace t = MixedTrace(20);
  ReplayOptions good;
  good.cluster.nodes = 2;
  std::vector<SweepConfig> configs(3);
  configs[0] = {"good", &t, good};
  configs[1] = {"typo", &t, good};
  configs[1].options.scheduler = "fare";
  configs[2] = {"good2", &t, good};
  std::vector<StatusOr<ReplayResult>> results = RunSweep(configs);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  EXPECT_NE(results[1].status().message().find("fifo, fair, two-tier"),
            std::string::npos)
      << results[1].status().message();
  EXPECT_TRUE(results[2].ok());
}

TEST(SweepTest, IncompatibleCellsFallBackToPrivateBuilds) {
  // Cells whose template-relevant options disagree with the first cell
  // on the trace cannot share its template; they must still replay
  // exactly like a standalone ReplayTrace, just without sharing.
  trace::Trace t = MixedTrace(60);
  ReplayOptions plain;
  plain.cluster.nodes = 2;
  ReplayOptions capped = plain;
  capped.max_tasks_per_job = 2;  // different skeletons entirely
  ReplayOptions rethresholded = plain;
  rethresholded.small_job_bytes = 1.0;  // every job classified large
  ReplayOptions chained = plain;
  chained.dependencies[2] = {1};
  ReplayOptions tight_sla = plain;
  tight_sla.sla.small_multiplier = 1.0;  // different deadlines baked in
  std::vector<SweepConfig> configs;
  configs.push_back({"plain", &t, plain});
  configs.push_back({"capped", &t, capped});
  configs.push_back({"rethresholded", &t, rethresholded});
  configs.push_back({"chained", &t, chained});
  configs.push_back({"tight-sla", &t, tight_sla});
  std::vector<StatusOr<ReplayResult>> results = RunSweep(configs, 2);
  ASSERT_EQ(results.size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << configs[i].label;
    auto serial = ReplayTrace(*configs[i].trace, configs[i].options);
    ASSERT_TRUE(serial.ok()) << configs[i].label;
    ExpectIdentical(*results[i], *serial);
  }
  // The fallback cells really did diverge from the shared template.
  EXPECT_NE(results[1]->outcomes[0].latency,
            results[0]->outcomes[0].latency);
}

}  // namespace
}  // namespace swim::sim

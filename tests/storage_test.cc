#include <string>

#include "gtest/gtest.h"
#include "common/random.h"
#include "storage/access_stream.h"
#include "storage/cache.h"
#include "storage/hdfs.h"
#include "trace/trace.h"

namespace swim::storage {
namespace {

trace::JobRecord PathJob(uint64_t id, double submit, const std::string& in,
                         const std::string& out, double in_bytes = 100,
                         double out_bytes = 10) {
  trace::JobRecord job;
  job.job_id = id;
  job.submit_time = submit;
  job.duration = 10;
  job.input_bytes = in_bytes;
  job.output_bytes = out_bytes;
  job.map_tasks = 1;
  job.map_task_seconds = 5;
  job.input_path = in;
  job.output_path = out;
  return job;
}

FileAccess Read(const std::string& path, double bytes, double time = 0) {
  return FileAccess{time, path, bytes, AccessKind::kRead, 0};
}

FileAccess Write(const std::string& path, double bytes, double time = 0) {
  return FileAccess{time, path, bytes, AccessKind::kWrite, 0};
}

// --- Access stream --------------------------------------------------------

TEST(AccessStreamTest, ExtractsReadsAndWritesInTimeOrder) {
  trace::Trace t;
  t.AddJob(PathJob(1, 100, "in/a", "out/1"));
  t.AddJob(PathJob(2, 50, "in/b", ""));
  auto accesses = ExtractAccesses(t);
  ASSERT_EQ(accesses.size(), 3u);
  EXPECT_EQ(accesses[0].path, "in/b");
  EXPECT_EQ(accesses[0].kind, AccessKind::kRead);
  EXPECT_EQ(accesses[1].path, "in/a");
  EXPECT_EQ(accesses[2].path, "out/1");
  EXPECT_EQ(accesses[2].kind, AccessKind::kWrite);
  EXPECT_DOUBLE_EQ(accesses[2].time, 110.0);  // finish time
}

TEST(AccessStreamTest, SkipsEmptyPaths) {
  trace::Trace t;
  t.AddJob(PathJob(1, 0, "", ""));
  EXPECT_TRUE(ExtractAccesses(t).empty());
}

TEST(AccessStreamTest, FileSizesTakeMaxObserved) {
  auto sizes = ComputeFileSizes(
      {Read("a", 100), Read("a", 300), Read("a", 200), Write("b", 50)});
  EXPECT_DOUBLE_EQ(sizes["a"], 300.0);
  EXPECT_DOUBLE_EQ(sizes["b"], 50.0);
}

// --- Caches ----------------------------------------------------------------

TEST(LruCacheTest, HitsOnReaccess) {
  LruCache cache(1000);
  EXPECT_FALSE(cache.Access(Read("a", 100)));
  EXPECT_TRUE(cache.Access(Read("a", 100)));
  EXPECT_DOUBLE_EQ(cache.stats().HitRate(), 0.5);
  EXPECT_DOUBLE_EQ(cache.stats().ByteHitRate(), 0.5);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(250);
  cache.Access(Read("a", 100, 1));
  cache.Access(Read("b", 100, 2));
  cache.Access(Read("a", 100, 3));  // refresh a
  cache.Access(Read("c", 100, 4));  // evicts b (LRU)
  EXPECT_TRUE(cache.Access(Read("a", 100, 5)));
  EXPECT_FALSE(cache.Access(Read("b", 100, 6)));
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(FifoCacheTest, EvictsOldestInsertion) {
  FifoCache cache(250);
  cache.Access(Read("a", 100, 1));
  cache.Access(Read("b", 100, 2));
  cache.Access(Read("a", 100, 3));  // hit; FIFO order unchanged
  cache.Access(Read("c", 100, 4));  // evicts a (oldest insertion)
  EXPECT_FALSE(cache.Access(Read("a", 100, 5)));
}

TEST(LfuCacheTest, EvictsLeastFrequent) {
  LfuCache cache(250);
  cache.Access(Read("a", 100, 1));
  cache.Access(Read("a", 100, 2));  // a: freq 2
  cache.Access(Read("b", 100, 3));  // b: freq 1
  cache.Access(Read("c", 100, 4));  // evicts b
  EXPECT_TRUE(cache.Access(Read("a", 100, 5)));
  EXPECT_FALSE(cache.Access(Read("b", 100, 6)));
}

TEST(SizeThresholdCacheTest, RejectsLargeFiles) {
  SizeThresholdLruCache cache(1e9, /*max_file_bytes=*/1000);
  cache.Access(Read("small", 100));
  cache.Access(Read("large", 1e6));
  EXPECT_TRUE(cache.Access(Read("small", 100)));
  EXPECT_FALSE(cache.Access(Read("large", 1e6)));
  EXPECT_GE(cache.stats().admission_rejections, 1u);
}

TEST(UnboundedCacheTest, NeverEvicts) {
  UnboundedCache cache;
  for (int i = 0; i < 1000; ++i) {
    cache.Access(Read("f" + std::to_string(i), 1e9));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(cache.Access(Read("f" + std::to_string(i), 1e9)));
  }
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(CacheTest, WritesWarmTheCache) {
  LruCache cache(1000);
  cache.Access(Write("out/x", 100));
  EXPECT_TRUE(cache.Access(Read("out/x", 100)));
  // The write itself is not counted as a read access.
  EXPECT_EQ(cache.stats().accesses, 1u);
}

TEST(CacheTest, FileLargerThanCapacityRejected) {
  LruCache cache(100);
  EXPECT_FALSE(cache.Access(Read("big", 500)));
  EXPECT_FALSE(cache.Access(Read("big", 500)));  // still a miss
  EXPECT_EQ(cache.resident_files(), 0u);
}

TEST(CacheTest, SizeChangeAdjustsUsage) {
  LruCache cache(1000);
  cache.Access(Write("a", 100));
  EXPECT_DOUBLE_EQ(cache.used_bytes(), 100.0);
  cache.Access(Write("a", 400));
  EXPECT_DOUBLE_EQ(cache.used_bytes(), 400.0);
  EXPECT_EQ(cache.resident_files(), 1u);
}

TEST(CacheTest, ReplayAccessesAccumulates) {
  LruCache cache(1000);
  CacheStats stats = ReplayAccesses(
      {Read("a", 10), Read("a", 10), Read("b", 10), Read("b", 10)}, cache);
  EXPECT_EQ(stats.accesses, 4u);
  EXPECT_EQ(stats.hits, 2u);
}

TEST(CacheTest, BoundedNeverBeatsUnbounded) {
  // Property: any bounded policy's hit count <= intrinsic re-access count.
  std::vector<FileAccess> stream;
  Pcg32 rng(5);
  for (int i = 0; i < 2000; ++i) {
    stream.push_back(
        Read("f" + std::to_string(rng.NextBounded(100)), 1000, i));
  }
  UnboundedCache unbounded;
  LruCache lru(20000);
  FifoCache fifo(20000);
  LfuCache lfu(20000);
  uint64_t upper = ReplayAccesses(stream, unbounded).hits;
  EXPECT_LE(ReplayAccesses(stream, lru).hits, upper);
  EXPECT_LE(ReplayAccesses(stream, fifo).hits, upper);
  EXPECT_LE(ReplayAccesses(stream, lfu).hits, upper);
}

// --- HDFS namespace -----------------------------------------------------------

TEST(HdfsTest, CreateStatDelete) {
  HdfsNamespace hdfs(HdfsOptions{});
  ASSERT_TRUE(hdfs.CreateFile("/a", 300e6).ok());
  EXPECT_TRUE(hdfs.Exists("/a"));
  auto info = hdfs.Stat("/a");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->blocks.size(), 3u);  // 300MB / 128MB -> 3 blocks
  EXPECT_DOUBLE_EQ(hdfs.total_stored_bytes(), 300e6);
  ASSERT_TRUE(hdfs.DeleteFile("/a").ok());
  EXPECT_FALSE(hdfs.Exists("/a"));
  EXPECT_DOUBLE_EQ(hdfs.total_stored_bytes(), 0.0);
}

TEST(HdfsTest, CreateDuplicateFails) {
  HdfsNamespace hdfs(HdfsOptions{});
  ASSERT_TRUE(hdfs.CreateFile("/a", 10).ok());
  EXPECT_EQ(hdfs.CreateFile("/a", 10).code(), StatusCode::kAlreadyExists);
}

TEST(HdfsTest, WriteReplaces) {
  HdfsNamespace hdfs(HdfsOptions{});
  ASSERT_TRUE(hdfs.WriteFile("/a", 100).ok());
  ASSERT_TRUE(hdfs.WriteFile("/a", 999).ok());
  EXPECT_DOUBLE_EQ(hdfs.Stat("/a")->bytes, 999.0);
  EXPECT_EQ(hdfs.file_count(), 1u);
}

TEST(HdfsTest, ReplicationPlacesDistinctNodes) {
  HdfsOptions options;
  options.nodes = 5;
  options.replication = 3;
  HdfsNamespace hdfs(options);
  ASSERT_TRUE(hdfs.CreateFile("/a", 1e9).ok());
  auto info = hdfs.Stat("/a");
  ASSERT_TRUE(info.ok());
  for (const auto& block : info->blocks) {
    ASSERT_EQ(block.nodes.size(), 3u);
    EXPECT_NE(block.nodes[0], block.nodes[1]);
    EXPECT_NE(block.nodes[1], block.nodes[2]);
    EXPECT_NE(block.nodes[0], block.nodes[2]);
  }
}

TEST(HdfsTest, NodeBytesConserved) {
  HdfsOptions options;
  options.nodes = 4;
  options.replication = 2;
  HdfsNamespace hdfs(options);
  ASSERT_TRUE(hdfs.CreateFile("/a", 500e6).ok());
  double node_total = 0;
  for (int n = 0; n < hdfs.node_count(); ++n) node_total += hdfs.NodeBytes(n);
  EXPECT_NEAR(node_total, hdfs.total_physical_bytes(), 1.0);
  ASSERT_TRUE(hdfs.DeleteFile("/a").ok());
  for (int n = 0; n < hdfs.node_count(); ++n) {
    EXPECT_NEAR(hdfs.NodeBytes(n), 0.0, 1e-6);
  }
}

TEST(HdfsTest, RejectsBadArguments) {
  HdfsNamespace hdfs(HdfsOptions{});
  EXPECT_FALSE(hdfs.CreateFile("", 10).ok());
  EXPECT_FALSE(hdfs.CreateFile("/a", -5).ok());
  EXPECT_FALSE(hdfs.DeleteFile("/missing").ok());
  EXPECT_FALSE(hdfs.Stat("/missing").ok());
}

TEST(HdfsTest, ReplicationClampedToNodeCount) {
  HdfsOptions options;
  options.nodes = 2;
  options.replication = 5;
  HdfsNamespace hdfs(options);
  ASSERT_TRUE(hdfs.CreateFile("/a", 10).ok());
  EXPECT_EQ(hdfs.Stat("/a")->blocks[0].nodes.size(), 2u);
}

}  // namespace
}  // namespace swim::storage

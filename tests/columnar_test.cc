// STF1 columnar format: round-trip identity (bytes, columns, indexes),
// mmap/read() path equivalence, analyzer byte-identity across formats and
// thread counts, the corrupted-input validation ladder (every structural
// lie must yield a structured error, never a crash), and a short
// deterministic fuzz pass (bench_fuzz_ingest runs the long version under
// ASan/UBSan in CI).
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/checksum.h"
#include "common/interner.h"
#include "core/analysis/workload_report.h"
#include "gtest/gtest.h"
#include "trace/columnar.h"
#include "trace/stf1_mutator.h"
#include "trace/trace.h"
#include "trace/trace_io.h"

namespace swim::trace {
namespace {

/// A trace exercising the format's full surface: quoted names, empty
/// optional strings (kNoStringId columns), shared paths (dictionary
/// dedup), map-only jobs, fractional doubles.
Trace BaseTrace(size_t jobs = 64) {
  Trace t;
  t.mutable_metadata().name = "STF1-test, \"quoted\"";
  t.mutable_metadata().machines = 600;
  t.mutable_metadata().year = 2010;
  for (uint64_t id = 1; id <= jobs; ++id) {
    JobRecord job;
    job.job_id = id;
    switch (id % 4) {
      case 0: job.name = "pipeline,stage " + std::to_string(id); break;
      case 1: job.name = "ad hoc \"select\""; break;
      case 2: job.name = "line1\nline2"; break;
      default: job.name = ""; break;
    }
    job.submit_time = static_cast<double>(id) * 9.731;
    job.duration = 30.0 + static_cast<double>(id) / 7.0;
    job.input_bytes = 1.5e6 * static_cast<double>(id % 17 + 1);
    job.shuffle_bytes = id % 3 == 0 ? 0.0 : 5.25e5;
    job.output_bytes = 1e5 + 0.125;
    job.map_tasks = 1 + static_cast<int64_t>(id % 9);
    job.reduce_tasks = id % 3 == 0 ? 0 : 1;
    job.map_task_seconds = 40.5;
    job.reduce_task_seconds = id % 3 == 0 ? 0.0 : 10.0;
    job.input_path = "hdfs://warehouse/t" + std::to_string(id % 7);
    job.output_path = id % 5 == 0 ? "" : "out/" + std::to_string(id % 11);
    t.AddJob(std::move(job));
  }
  return t;
}

/// Reparses the header + section table, applies `damage` to the byte
/// image, then recomputes the damaged section's checksum, the table
/// checksum, and the header checksum — so the corruption under test is the
/// ONLY invalid thing in the file and the validation ladder can't bail out
/// earlier for an incidental reason.
template <typename Damage>
std::string PatchSection(std::string bytes, Stf1SectionKind kind,
                         Damage&& damage) {
  Stf1Header header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  for (size_t i = 0; i < kStf1SectionCount; ++i) {
    Stf1Section section;
    const size_t entry_at = header.table_offset + i * sizeof(Stf1Section);
    std::memcpy(&section, bytes.data() + entry_at, sizeof(section));
    if (section.kind != static_cast<uint32_t>(kind)) continue;
    damage(&bytes, section);
    section.checksum = Checksum64(bytes.data() + section.offset,
                                  section.bytes);
    std::memcpy(bytes.data() + entry_at, &section, sizeof(section));
    break;
  }
  header.table_checksum =
      Checksum64(bytes.data() + header.table_offset, header.table_bytes);
  header.header_checksum = Checksum64(&header, offsetof(Stf1Header,
                                                        header_checksum));
  std::memcpy(bytes.data(), &header, sizeof(header));
  return bytes;
}

/// Rewrites a header field and re-signs the header checksum.
template <typename Mutate>
std::string PatchHeader(std::string bytes, Mutate&& mutate) {
  Stf1Header header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  mutate(&header);
  header.header_checksum = Checksum64(&header, offsetof(Stf1Header,
                                                        header_checksum));
  std::memcpy(bytes.data(), &header, sizeof(header));
  return bytes;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(ColumnarTest, CsvToStf1ToCsvIsByteIdentical) {
  Trace original = BaseTrace();
  const std::string csv = TraceToCsv(original);

  auto from_csv = TraceFromCsv(csv);
  ASSERT_TRUE(from_csv.ok()) << from_csv.status().ToString();
  auto back = TraceFromColumnarBytes(TraceToColumnarBytes(*from_csv));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(TraceToCsv(*back), csv);
}

TEST(ColumnarTest, RoundTripPreservesIndexesAndMetadata) {
  Trace original = BaseTrace();
  auto loaded = TraceFromColumnarBytes(TraceToColumnarBytes(original));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->metadata().name, original.metadata().name);
  EXPECT_EQ(loaded->metadata().machines, original.metadata().machines);
  EXPECT_EQ(loaded->metadata().year, original.metadata().year);
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded->jobs()[i], original.jobs()[i]) << "job " << i;
  }
  // The persisted id columns must equal what a lazy rebuild would produce
  // (first-appearance order), so downstream consumers can't tell a loaded
  // trace from a parsed one.
  EXPECT_EQ(loaded->name_ids(), original.name_ids());
  EXPECT_EQ(loaded->input_path_ids(), original.input_path_ids());
  EXPECT_EQ(loaded->output_path_ids(), original.output_path_ids());
  ASSERT_EQ(loaded->name_interner().size(), original.name_interner().size());
  ASSERT_EQ(loaded->path_interner().size(), original.path_interner().size());
  for (uint32_t id = 0; id < original.name_interner().size(); ++id) {
    EXPECT_EQ(loaded->name_interner().NameOf(id),
              original.name_interner().NameOf(id));
  }
  for (uint32_t id = 0; id < original.path_interner().size(); ++id) {
    EXPECT_EQ(loaded->path_interner().NameOf(id),
              original.path_interner().NameOf(id));
  }
}

TEST(ColumnarTest, EmptyTraceRoundTrips) {
  Trace empty;
  empty.mutable_metadata().name = "EMPTY";
  auto loaded = TraceFromColumnarBytes(TraceToColumnarBytes(empty));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->metadata().name, "EMPTY");
}

TEST(ColumnarTest, MmapAndReadPathsProduceIdenticalTraces) {
  Trace original = BaseTrace();
  const std::string path = TempPath("columnar_paths.stf1");
  ASSERT_TRUE(WriteTraceColumnar(original, path).ok());

  ColumnarOptions with_mmap;
  with_mmap.allow_mmap = true;
  ColumnarOptions no_mmap;
  no_mmap.allow_mmap = false;
  auto mapped = LoadTraceColumnar(path, with_mmap);
  auto read = LoadTraceColumnar(path, no_mmap);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(TraceToCsv(*mapped), TraceToCsv(*read));
  EXPECT_EQ(mapped->name_ids(), read->name_ids());
  EXPECT_EQ(mapped->input_path_ids(), read->input_path_ids());
  std::remove(path.c_str());
}

TEST(ColumnarTest, ViewExposesColumnsZeroCopy) {
  Trace original = BaseTrace();
  auto view = ColumnarTraceView::FromBytes(TraceToColumnarBytes(original));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_EQ(view->job_count(), original.size());
  const auto& jobs = original.jobs();
  auto submit = view->submit_times();
  auto maps = view->map_tasks();
  auto names = view->name_ids();
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(submit[i], jobs[i].submit_time);
    EXPECT_EQ(maps[i], jobs[i].map_tasks);
    if (jobs[i].name.empty()) {
      EXPECT_EQ(names[i], kNoStringId);
    } else {
      EXPECT_EQ(view->NameAt(names[i]), jobs[i].name);
    }
  }
  EXPECT_TRUE(view->VerifyChecksums().ok());
}

TEST(ColumnarTest, AnalyzerIsByteIdenticalAcrossFormatsAndThreads) {
  Trace original = BaseTrace(256);
  const std::string csv_path = TempPath("columnar_analyze.csv");
  const std::string stf1_path = TempPath("columnar_analyze.stf1");
  ASSERT_TRUE(WriteTraceCsv(original, csv_path).ok());
  ASSERT_TRUE(WriteTraceColumnar(original, stf1_path).ok());

  const char* old = std::getenv("SWIM_THREADS");
  const std::string saved = old ? old : "";
  std::string reports[2][2];
  const char* threads[2] = {"1", "8"};
  for (int env = 0; env < 2; ++env) {
    ::setenv("SWIM_THREADS", threads[env], 1);
    const std::string* paths[2] = {&csv_path, &stf1_path};
    for (int format = 0; format < 2; ++format) {
      auto loaded = ReadTraceAuto(*paths[format]);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      auto report = core::AnalyzeWorkload(*loaded);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      reports[env][format] = core::FormatReport(*report);
    }
  }
  if (old) {
    ::setenv("SWIM_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("SWIM_THREADS");
  }
  EXPECT_EQ(reports[0][0], reports[0][1]) << "CSV vs STF1 at 1 thread";
  EXPECT_EQ(reports[1][0], reports[1][1]) << "CSV vs STF1 at 8 threads";
  EXPECT_EQ(reports[0][0], reports[1][0]) << "1 vs 8 threads";
  std::remove(csv_path.c_str());
  std::remove(stf1_path.c_str());
}

TEST(ColumnarTest, SniffsFormatsAndDispatchesByExtension) {
  Trace original = BaseTrace(8);
  const std::string csv_path = TempPath("columnar_sniff.csv");
  const std::string stf1_path = TempPath("columnar_sniff.stf1");
  ASSERT_TRUE(WriteTraceAuto(original, csv_path).ok());
  ASSERT_TRUE(WriteTraceAuto(original, stf1_path).ok());

  auto csv_format = SniffTraceFormat(csv_path);
  auto stf1_format = SniffTraceFormat(stf1_path);
  ASSERT_TRUE(csv_format.ok());
  ASSERT_TRUE(stf1_format.ok());
  EXPECT_EQ(*csv_format, TraceFormat::kCsv);
  EXPECT_EQ(*stf1_format, TraceFormat::kStf1);
  EXPECT_FALSE(SniffTraceFormat(TempPath("no_such_file.stf1")).ok());
  EXPECT_TRUE(HasColumnarExtension("x.stf"));
  EXPECT_TRUE(HasColumnarExtension("x.STF1"));
  EXPECT_TRUE(HasColumnarExtension("x.Stf1"));
  EXPECT_FALSE(HasColumnarExtension("x.csv"));
  EXPECT_FALSE(HasColumnarExtension("stf1"));

  // A zero-length file is neither format: sniffing reports a structured
  // error instead of handing it to the CSV parser.
  const std::string empty_path = TempPath("columnar_sniff_empty.stf1");
  std::fclose(std::fopen(empty_path.c_str(), "wb"));
  auto empty_format = SniffTraceFormat(empty_path);
  ASSERT_FALSE(empty_format.ok());
  EXPECT_NE(empty_format.status().ToString().find("empty trace file"),
            std::string::npos);
  std::remove(empty_path.c_str());

  auto from_csv = ReadTraceAuto(csv_path);
  auto from_stf1 = ReadTraceAuto(stf1_path);
  ASSERT_TRUE(from_csv.ok());
  ASSERT_TRUE(from_stf1.ok());
  EXPECT_EQ(TraceToCsv(*from_csv), TraceToCsv(*from_stf1));
  std::remove(csv_path.c_str());
  std::remove(stf1_path.c_str());
}

// --- The corrupted-input ladder -------------------------------------------

TEST(ColumnarTest, RejectsTruncatedFile) {
  const std::string bytes = TraceToColumnarBytes(BaseTrace());
  // The file may end with alignment padding after the last payload, which
  // is legitimately removable; truncate into the payloads themselves.
  Stf1Header header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  size_t last_payload_end = 0;
  for (size_t i = 0; i < kStf1SectionCount; ++i) {
    Stf1Section section;
    std::memcpy(&section,
                bytes.data() + header.table_offset + i * sizeof(section),
                sizeof(section));
    last_payload_end =
        std::max<size_t>(last_payload_end, section.offset + section.bytes);
  }
  ASSERT_GT(last_payload_end, 640u);
  for (size_t keep : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                      size_t{640}, last_payload_end - 1}) {
    auto result = TraceFromColumnarBytes(bytes.substr(0, keep));
    EXPECT_FALSE(result.ok()) << "kept " << keep << " bytes";
    EXPECT_FALSE(result.status().message().empty());
  }
}

TEST(ColumnarTest, RejectsBadMagic) {
  std::string bytes = TraceToColumnarBytes(BaseTrace());
  bytes[0] = 'X';
  auto result = TraceFromColumnarBytes(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("magic"), std::string::npos)
      << result.status().ToString();
}

TEST(ColumnarTest, RejectsWrongVersion) {
  std::string bytes = PatchHeader(
      TraceToColumnarBytes(BaseTrace()),
      [](Stf1Header* header) { header->version = 99; });
  auto result = TraceFromColumnarBytes(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("version"), std::string::npos)
      << result.status().ToString();
}

TEST(ColumnarTest, RejectsHeaderChecksumMismatch) {
  std::string bytes = TraceToColumnarBytes(BaseTrace());
  // Flip a header byte without re-signing.
  bytes[static_cast<size_t>(offsetof(Stf1Header, job_count))] ^= 0x01;
  auto result = TraceFromColumnarBytes(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos)
      << result.status().ToString();
}

TEST(ColumnarTest, RejectsPayloadChecksumMismatch) {
  std::string bytes = TraceToColumnarBytes(BaseTrace());
  // Corrupt one payload byte, leaving header + table valid: only the
  // full-verification pass can catch it.
  Stf1Header header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  Stf1Section first;
  std::memcpy(&first, bytes.data() + header.table_offset, sizeof(first));
  bytes[first.offset] ^= 0x40;

  auto verified = TraceFromColumnarBytes(bytes);
  ASSERT_FALSE(verified.ok());
  EXPECT_NE(verified.status().message().find("checksum"), std::string::npos)
      << verified.status().ToString();

  // The same file opens as a view (structure is intact); VerifyChecksums
  // reports the damage.
  auto view = ColumnarTraceView::FromBytes(bytes);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_FALSE(view->VerifyChecksums().ok());
}

TEST(ColumnarTest, RejectsOutOfRangeDictionaryId) {
  Trace t = BaseTrace();
  const uint32_t path_count =
      static_cast<uint32_t>(t.path_interner().size());
  std::string bytes = PatchSection(
      TraceToColumnarBytes(t), Stf1SectionKind::kInputPathIds,
      [&](std::string* image, const Stf1Section& section) {
        const uint32_t bogus = path_count;  // one past the last valid id
        std::memcpy(image->data() + section.offset, &bogus, sizeof(bogus));
      });
  auto result = TraceFromColumnarBytes(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_FALSE(result.status().message().empty());
}

TEST(ColumnarTest, RejectsNonFiniteValues) {
  std::string bytes = PatchSection(
      TraceToColumnarBytes(BaseTrace()), Stf1SectionKind::kDuration,
      [](std::string* image, const Stf1Section& section) {
        const double nan = std::nan("");
        std::memcpy(image->data() + section.offset, &nan, sizeof(nan));
      });
  auto result = TraceFromColumnarBytes(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_FALSE(result.status().message().empty());
}

TEST(ColumnarTest, RejectsSectionPointingPastEof) {
  std::string bytes = TraceToColumnarBytes(BaseTrace());
  Stf1Header header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  Stf1Section first;
  std::memcpy(&first, bytes.data() + header.table_offset, sizeof(first));
  first.offset = (bytes.size() + kStf1Alignment) & ~(kStf1Alignment - 1);
  std::memcpy(bytes.data() + header.table_offset, &first, sizeof(first));
  header.table_checksum =
      Checksum64(bytes.data() + header.table_offset, header.table_bytes);
  header.header_checksum =
      Checksum64(&header, offsetof(Stf1Header, header_checksum));
  std::memcpy(bytes.data(), &header, sizeof(header));
  auto result = TraceFromColumnarBytes(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_FALSE(result.status().message().empty());
}

TEST(ColumnarTest, OpenReportsMissingFile) {
  auto view = ColumnarTraceView::Open(TempPath("definitely_missing.stf1"));
  ASSERT_FALSE(view.ok());
  EXPECT_FALSE(view.status().message().empty());
}

TEST(ColumnarTest, FuzzedImagesNeverCrashTheReader) {
  const std::string pristine = TraceToColumnarBytes(BaseTrace());
  ASSERT_TRUE(TraceFromColumnarBytes(pristine).ok());
  const Stf1Mutator mutator(2012);
  for (uint64_t iteration = 0; iteration < 500; ++iteration) {
    const std::string mutated = mutator.Mutate(pristine, iteration);
    auto result = TraceFromColumnarBytes(mutated);
    if (result.ok()) {
      for (const JobRecord& job : result->jobs()) {
        EXPECT_TRUE(ValidateJobRecord(job).empty())
            << "iteration " << iteration;
      }
    } else {
      EXPECT_FALSE(result.status().message().empty())
          << "iteration " << iteration;
    }
  }
}

}  // namespace
}  // namespace swim::trace

#include <cmath>

#include "common/units.h"
#include "gtest/gtest.h"
#include "sim/replay.h"
#include "sim/scheduler.h"
#include "trace/trace.h"

namespace swim::sim {
namespace {

trace::JobRecord SimpleJob(uint64_t id, double submit, int64_t maps,
                           double map_secs, int64_t reduces = 0,
                           double reduce_secs = 0.0, double bytes = 1e6) {
  trace::JobRecord job;
  job.job_id = id;
  job.submit_time = submit;
  job.duration = map_secs + reduce_secs;
  job.input_bytes = bytes;
  job.map_tasks = maps;
  job.map_task_seconds = map_secs;
  job.reduce_tasks = reduces;
  job.reduce_task_seconds = reduce_secs;
  if (reduces > 0) job.shuffle_bytes = bytes / 10;
  return job;
}

ReplayOptions SmallCluster(const std::string& scheduler = "fifo") {
  ReplayOptions options;
  options.cluster.nodes = 1;
  options.cluster.map_slots_per_node = 2;
  options.cluster.reduce_slots_per_node = 2;
  options.scheduler = scheduler;
  return options;
}

// --- Basic execution -------------------------------------------------------

TEST(ReplayTest, SingleJobRunsAtIdealLatency) {
  trace::Trace t;
  // 2 map tasks of 50s each on 2 map slots -> one wave of 50s, then one
  // reduce task of 30s.
  t.AddJob(SimpleJob(1, 0, 2, 100, 1, 30));
  auto result = ReplayTrace(t, SmallCluster());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outcomes.size(), 1u);
  EXPECT_NEAR(result->outcomes[0].latency, 80.0, 0.01);
  EXPECT_NEAR(result->outcomes[0].ideal_latency, 80.0, 0.01);
  EXPECT_NEAR(result->outcomes[0].Slowdown(), 1.0, 0.01);
}

TEST(ReplayTest, MultipleWavesWhenSlotsScarce) {
  trace::Trace t;
  // 4 map tasks of 25s each on 2 slots -> two waves of 25s = 50s.
  t.AddJob(SimpleJob(1, 0, 4, 100));
  auto result = ReplayTrace(t, SmallCluster());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->outcomes[0].latency, 50.0, 0.01);
  // Ideal (one wave) would be 25s.
  EXPECT_NEAR(result->outcomes[0].Slowdown(), 2.0, 0.01);
}

TEST(ReplayTest, ReducesWaitForMaps) {
  trace::Trace t;
  t.AddJob(SimpleJob(1, 0, 1, 40, 1, 40));
  auto result = ReplayTrace(t, SmallCluster());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->outcomes[0].latency, 80.0, 0.01);
}

TEST(ReplayTest, AllJobsComplete) {
  trace::Trace t;
  for (int i = 0; i < 50; ++i) {
    t.AddJob(SimpleJob(i + 1, i * 5.0, 1 + i % 3, 30.0 + i, i % 2, 10));
  }
  auto result = ReplayTrace(t, SmallCluster());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcomes.size(), 50u);
}

TEST(ReplayTest, DeterministicForSeed) {
  trace::Trace t;
  for (int i = 0; i < 30; ++i) {
    t.AddJob(SimpleJob(i + 1, i * 3.0, 2, 40, 1, 20));
  }
  ReplayOptions options = SmallCluster();
  options.straggler_probability = 0.2;
  auto a = ReplayTrace(t, options);
  auto b = ReplayTrace(t, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->outcomes.size(), b->outcomes.size());
  for (size_t i = 0; i < a->outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->outcomes[i].latency, b->outcomes[i].latency);
  }
}

// --- Occupancy conservation ---------------------------------------------------

TEST(ReplayTest, OccupancyIntegralEqualsTaskSeconds) {
  trace::Trace t;
  double total_task_seconds = 0;
  for (int i = 0; i < 20; ++i) {
    t.AddJob(SimpleJob(i + 1, i * 100.0, 2, 60, 1, 30));
    total_task_seconds += 90;
  }
  auto result = ReplayTrace(t, SmallCluster());
  ASSERT_TRUE(result.ok());
  double integral = 0;
  for (double o : result->hourly_occupancy) integral += o * 3600.0;
  EXPECT_NEAR(integral, total_task_seconds, 1.0);
}

TEST(ReplayTest, UtilizationBounded) {
  trace::Trace t;
  for (int i = 0; i < 100; ++i) t.AddJob(SimpleJob(i + 1, i * 1.0, 4, 200));
  auto result = ReplayTrace(t, SmallCluster());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->utilization, 0.0);
  EXPECT_LE(result->utilization, 1.0 + 1e-9);
}

// --- Task capping ---------------------------------------------------------------

TEST(ReplayTest, TaskCapPreservesTaskSeconds) {
  trace::Trace t;
  t.AddJob(SimpleJob(1, 0, 100000, 5000.0));
  ReplayOptions options = SmallCluster();
  options.max_tasks_per_job = 10;
  auto result = ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());
  // 10 merged tasks of 500s on 2 slots -> 5 waves of 500s = 2500s.
  EXPECT_NEAR(result->outcomes[0].latency, 2500.0, 0.1);
}

// --- Scheduler comparisons --------------------------------------------------------

/// One huge job submitted just before many small jobs: the paper's
/// head-of-line-blocking scenario (section 6.2: "poor management of a
/// single large job potentially impacts performance for a large number of
/// small jobs").
trace::Trace HeadOfLineTrace() {
  trace::Trace t;
  trace::JobRecord huge = SimpleJob(1, 0, 40, 40 * 600.0, 0, 0, 1e13);
  t.AddJob(huge);
  for (int i = 0; i < 20; ++i) {
    t.AddJob(SimpleJob(2 + i, 1.0 + i, 1, 10, 0, 0, 1e6));
  }
  return t;
}

TEST(SchedulerTest, FifoBlocksSmallJobsBehindHuge) {
  auto fifo = ReplayTrace(HeadOfLineTrace(), SmallCluster("fifo"));
  auto fair = ReplayTrace(HeadOfLineTrace(), SmallCluster("fair"));
  ASSERT_TRUE(fifo.ok());
  ASSERT_TRUE(fair.ok());
  double fifo_small_p50 = fifo->LatencyQuantile(/*small_jobs=*/true, 0.5);
  double fair_small_p50 = fair->LatencyQuantile(/*small_jobs=*/true, 0.5);
  // Under FIFO the small jobs wait for the huge job's map waves.
  EXPECT_GT(fifo_small_p50, 10 * fair_small_p50);
}

TEST(SchedulerTest, TwoTierProtectsSmallJobs) {
  auto fifo = ReplayTrace(HeadOfLineTrace(), SmallCluster("fifo"));
  auto tiered = ReplayTrace(HeadOfLineTrace(), SmallCluster("two-tier"));
  ASSERT_TRUE(fifo.ok());
  ASSERT_TRUE(tiered.ok());
  EXPECT_LT(tiered->LatencyQuantile(true, 0.9),
            fifo->LatencyQuantile(true, 0.9) / 5);
  // The huge job still completes.
  EXPECT_EQ(tiered->CountJobs(false), 1u);
}

TEST(SchedulerTest, FactoryNames) {
  EXPECT_EQ(MakeScheduler("fifo")->name(), "FIFO");
  EXPECT_EQ(MakeScheduler("FAIR")->name(), "Fair");
  EXPECT_EQ(MakeScheduler("two-tier")->name(), "TwoTier");
  EXPECT_EQ(MakeScheduler("unknown")->name(), "FIFO");  // default
}

// --- Stragglers ---------------------------------------------------------------------

TEST(StragglerTest, InjectionIncreasesLatency) {
  trace::Trace t;
  for (int i = 0; i < 200; ++i) {
    t.AddJob(SimpleJob(i + 1, i * 50.0, 2, 60, 0, 0));
  }
  ReplayOptions clean = SmallCluster();
  ReplayOptions slow = SmallCluster();
  slow.straggler_probability = 0.5;
  slow.straggler_factor = 10.0;
  auto clean_result = ReplayTrace(t, clean);
  auto slow_result = ReplayTrace(t, slow);
  ASSERT_TRUE(clean_result.ok());
  ASSERT_TRUE(slow_result.ok());
  EXPECT_GT(slow_result->LatencyQuantile(true, 0.9),
            clean_result->LatencyQuantile(true, 0.9) * 2);
}

TEST(StragglerTest, SingleWaveJobsFullyExposed) {
  // A job with one map task hit by a straggler runs straggler_factor x
  // longer - the paper's point that few-task jobs cannot hide stragglers.
  trace::Trace t;
  t.AddJob(SimpleJob(1, 0, 1, 100));
  ReplayOptions options = SmallCluster();
  options.straggler_probability = 1.0;
  options.straggler_factor = 5.0;
  auto result = ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->outcomes[0].latency, 500.0, 0.1);
}

TEST(StragglerTest, SpeculationCapsMultiTaskJobs) {
  // 4 map tasks, all straggling 10x; with speculation the siblings expose
  // them and the penalty caps at 2x.
  trace::Trace t;
  t.AddJob(SimpleJob(1, 0, 4, 400));  // 4 tasks x 100 s
  ReplayOptions options = SmallCluster();
  options.straggler_probability = 1.0;
  options.straggler_factor = 10.0;
  auto plain = ReplayTrace(t, options);
  options.speculative_execution = true;
  auto speculative = ReplayTrace(t, options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(speculative.ok());
  // Plain: 2 waves x 1000 s; speculative: 2 waves x 200 s.
  EXPECT_NEAR(plain->outcomes[0].latency, 2000.0, 0.1);
  EXPECT_NEAR(speculative->outcomes[0].latency, 400.0, 0.1);
}

TEST(StragglerTest, SpeculationCannotHelpSingleTaskJobs) {
  // The paper's section 6.2 point: a single-task job has no sibling to
  // compare against, so speculation never triggers.
  trace::Trace t;
  t.AddJob(SimpleJob(1, 0, 1, 100));
  ReplayOptions options = SmallCluster();
  options.straggler_probability = 1.0;
  options.straggler_factor = 10.0;
  options.speculative_execution = true;
  auto result = ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->outcomes[0].latency, 1000.0, 0.1);  // full 10x
}

// --- Validation -----------------------------------------------------------------------

TEST(ReplayTest, RejectsBadInputs) {
  trace::Trace empty;
  EXPECT_FALSE(ReplayTrace(empty).ok());
  trace::Trace t;
  t.AddJob(SimpleJob(1, 0, 1, 10));
  ReplayOptions options;
  options.cluster.nodes = 0;
  EXPECT_FALSE(ReplayTrace(t, options).ok());
  options = {};
  options.max_tasks_per_job = 0;
  EXPECT_FALSE(ReplayTrace(t, options).ok());
}

// --- Failure injection ------------------------------------------------------

trace::Trace FailureFleet(int jobs = 40) {
  trace::Trace t;
  for (int i = 1; i <= jobs; ++i) {
    t.AddJob(SimpleJob(static_cast<uint64_t>(i), 5.0 * i, 4, 120, 2, 40));
  }
  return t;
}

TEST(FailureTest, RejectsBadFailureOptions) {
  trace::Trace t = FailureFleet(1);
  ReplayOptions options;
  options.failures.task_failure_probability = 1.5;
  EXPECT_FALSE(ReplayTrace(t, options).ok());
  options = {};
  options.failures.failure_point = 0.0;
  EXPECT_FALSE(ReplayTrace(t, options).ok());
  options = {};
  options.failures.max_attempts = 0;
  EXPECT_FALSE(ReplayTrace(t, options).ok());
  options = {};
  options.failures.node_loss_per_hour = -1;
  EXPECT_FALSE(ReplayTrace(t, options).ok());
  options = {};
  options.failures.retry_backoff_seconds = -1;
  EXPECT_FALSE(ReplayTrace(t, options).ok());
}

TEST(FailureTest, DisabledModelLeavesReplayUntouched) {
  // With both failure knobs at zero the failure RNG streams are never
  // consulted: results (incl. straggler draws) must equal a run with the
  // model's other knobs set to arbitrary values.
  trace::Trace t = FailureFleet();
  ReplayOptions plain = SmallCluster("fair");
  plain.straggler_probability = 0.1;
  ReplayOptions with_knobs = plain;
  with_knobs.failures.max_attempts = 2;
  with_knobs.failures.retry_backoff_seconds = 99;
  with_knobs.failures.failure_point = 0.9;
  auto a = ReplayTrace(t, plain);
  auto b = ReplayTrace(t, with_knobs);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->outcomes.size(), b->outcomes.size());
  for (size_t i = 0; i < a->outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->outcomes[i].latency, b->outcomes[i].latency);
    EXPECT_EQ(a->outcomes[i].retries, 0);
  }
  EXPECT_EQ(b->failures.task_failures, 0);
  EXPECT_EQ(b->failures.node_losses, 0);
  EXPECT_EQ(b->failures.retries, 0);
  EXPECT_DOUBLE_EQ(b->failures.failed_task_seconds, 0.0);
}

TEST(FailureTest, DeterministicForSeed) {
  trace::Trace t = FailureFleet();
  ReplayOptions options = SmallCluster("fair");
  options.straggler_probability = 0.05;
  options.failures.task_failure_probability = 0.1;
  options.failures.node_loss_per_hour = 2.0;
  options.seed = 77;
  auto a = ReplayTrace(t, options);
  auto b = ReplayTrace(t, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->outcomes.size(), b->outcomes.size());
  for (size_t i = 0; i < a->outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->outcomes[i].latency, b->outcomes[i].latency);
    EXPECT_EQ(a->outcomes[i].retries, b->outcomes[i].retries);
  }
  EXPECT_EQ(a->failures.task_failures, b->failures.task_failures);
  EXPECT_EQ(a->failures.node_losses, b->failures.node_losses);
  EXPECT_EQ(a->failures.tasks_lost_to_nodes, b->failures.tasks_lost_to_nodes);
  EXPECT_DOUBLE_EQ(a->failures.failed_task_seconds,
                   b->failures.failed_task_seconds);
  // A different seed must actually change the draw.
  options.seed = 78;
  auto c = ReplayTrace(t, options);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->failures.task_failures, c->failures.task_failures);
}

TEST(FailureTest, RetriesRecoverFailedTasks) {
  trace::Trace t = FailureFleet();
  ReplayOptions options = SmallCluster("fifo");
  options.failures.task_failure_probability = 0.2;
  options.failures.max_attempts = 8;  // generous budget: everything finishes
  options.failures.retry_backoff_seconds = 1.0;
  auto result = ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcomes.size(), 40u);
  EXPECT_EQ(result->unfinished_jobs, 0u);
  EXPECT_GT(result->failures.task_failures, 0);
  // Every failed attempt was eventually re-executed.
  EXPECT_EQ(result->failures.retries, result->failures.task_failures);
  EXPECT_GT(result->failures.failed_task_seconds, 0.0);
  int64_t outcome_retries = 0;
  for (const auto& o : result->outcomes) outcome_retries += o.retries;
  EXPECT_EQ(outcome_retries, result->failures.retries);
}

TEST(FailureTest, CertainFailureKillsEveryJob) {
  trace::Trace t = FailureFleet();
  ReplayOptions options = SmallCluster("fifo");
  options.failures.task_failure_probability = 1.0;
  options.failures.max_attempts = 2;
  options.failures.retry_backoff_seconds = 0.0;
  auto result = ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->outcomes.empty());
  EXPECT_EQ(result->failures.failed_jobs, 40);
  EXPECT_EQ(result->unfinished_jobs, 40u);
  EXPECT_GT(result->failures.failed_task_seconds, 0.0);
  // Wasted time never exceeds what the attempt budget allows.
  EXPECT_GT(result->failures.task_failures, 0);
}

TEST(FailureTest, FailuresSlowJobsDown) {
  trace::Trace t = FailureFleet();
  ReplayOptions clean = SmallCluster("fair");
  ReplayOptions faulty = clean;
  faulty.failures.task_failure_probability = 0.25;
  faulty.failures.max_attempts = 10;
  auto a = ReplayTrace(t, clean);
  auto b = ReplayTrace(t, faulty);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(b->outcomes.size(), 40u);
  EXPECT_GT(b->MeanSlowdown(true), a->MeanSlowdown(true));
}

TEST(FailureTest, NodeLossKillsRunningTasks) {
  trace::Trace t = FailureFleet();
  ReplayOptions options = SmallCluster("fifo");
  options.failures.node_loss_per_hour = 30.0;  // aggressive: ~1 per 2 min
  options.failures.max_attempts = 10;
  auto result = ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->failures.node_losses, 0);
  EXPECT_GT(result->failures.tasks_lost_to_nodes, 0);
  EXPECT_GT(result->failures.failed_task_seconds, 0.0);
  EXPECT_EQ(result->failures.task_failures, 0);  // only node kills active
  // Generous attempt budget: the work still completes.
  EXPECT_EQ(result->outcomes.size(), 40u);
}

TEST(FailureTest, ComposesWithStragglersAndSpeculation) {
  trace::Trace t = FailureFleet();
  ReplayOptions options = SmallCluster("two-tier");
  options.straggler_probability = 0.1;
  options.speculative_execution = true;
  options.failures.task_failure_probability = 0.1;
  options.failures.node_loss_per_hour = 5.0;
  options.failures.max_attempts = 12;
  auto result = ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcomes.size(), 40u);
  EXPECT_GT(result->failures.task_failures, 0);
  EXPECT_GT(result->failures.retries, 0);
  auto again = ReplayTrace(t, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(result->failures.retries, again->failures.retries);
}

}  // namespace
}  // namespace swim::sim

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "gtest/gtest.h"
#include "sim/replay.h"
#include "sim/scheduler.h"
#include "trace/trace.h"

namespace swim::sim {
namespace {

trace::JobRecord SimpleJob(uint64_t id, double submit, int64_t maps,
                           double map_secs, int64_t reduces = 0,
                           double reduce_secs = 0.0, double bytes = 1e6) {
  trace::JobRecord job;
  job.job_id = id;
  job.submit_time = submit;
  job.duration = map_secs + reduce_secs;
  job.input_bytes = bytes;
  job.map_tasks = maps;
  job.map_task_seconds = map_secs;
  job.reduce_tasks = reduces;
  job.reduce_task_seconds = reduce_secs;
  if (reduces > 0) job.shuffle_bytes = bytes / 10;
  return job;
}

ReplayOptions SmallCluster(const std::string& scheduler = "fifo") {
  ReplayOptions options;
  options.cluster.nodes = 1;
  options.cluster.map_slots_per_node = 2;
  options.cluster.reduce_slots_per_node = 2;
  options.scheduler = scheduler;
  return options;
}

// --- Basic execution -------------------------------------------------------

TEST(ReplayTest, SingleJobRunsAtIdealLatency) {
  trace::Trace t;
  // 2 map tasks of 50s each on 2 map slots -> one wave of 50s, then one
  // reduce task of 30s.
  t.AddJob(SimpleJob(1, 0, 2, 100, 1, 30));
  auto result = ReplayTrace(t, SmallCluster());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outcomes.size(), 1u);
  EXPECT_NEAR(result->outcomes[0].latency, 80.0, 0.01);
  EXPECT_NEAR(result->outcomes[0].ideal_latency, 80.0, 0.01);
  EXPECT_NEAR(result->outcomes[0].Slowdown(), 1.0, 0.01);
}

TEST(ReplayTest, MultipleWavesWhenSlotsScarce) {
  trace::Trace t;
  // 4 map tasks of 25s each on 2 slots -> two waves of 25s = 50s.
  t.AddJob(SimpleJob(1, 0, 4, 100));
  auto result = ReplayTrace(t, SmallCluster());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->outcomes[0].latency, 50.0, 0.01);
  // Ideal (one wave) would be 25s.
  EXPECT_NEAR(result->outcomes[0].Slowdown(), 2.0, 0.01);
}

TEST(ReplayTest, ReducesWaitForMaps) {
  trace::Trace t;
  t.AddJob(SimpleJob(1, 0, 1, 40, 1, 40));
  auto result = ReplayTrace(t, SmallCluster());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->outcomes[0].latency, 80.0, 0.01);
}

TEST(ReplayTest, AllJobsComplete) {
  trace::Trace t;
  for (int i = 0; i < 50; ++i) {
    t.AddJob(SimpleJob(i + 1, i * 5.0, 1 + i % 3, 30.0 + i, i % 2, 10));
  }
  auto result = ReplayTrace(t, SmallCluster());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcomes.size(), 50u);
}

TEST(ReplayTest, DeterministicForSeed) {
  trace::Trace t;
  for (int i = 0; i < 30; ++i) {
    t.AddJob(SimpleJob(i + 1, i * 3.0, 2, 40, 1, 20));
  }
  ReplayOptions options = SmallCluster();
  options.straggler_probability = 0.2;
  auto a = ReplayTrace(t, options);
  auto b = ReplayTrace(t, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->outcomes.size(), b->outcomes.size());
  for (size_t i = 0; i < a->outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->outcomes[i].latency, b->outcomes[i].latency);
  }
}

// --- Occupancy conservation ---------------------------------------------------

TEST(ReplayTest, OccupancyIntegralEqualsTaskSeconds) {
  trace::Trace t;
  double total_task_seconds = 0;
  for (int i = 0; i < 20; ++i) {
    t.AddJob(SimpleJob(i + 1, i * 100.0, 2, 60, 1, 30));
    total_task_seconds += 90;
  }
  auto result = ReplayTrace(t, SmallCluster());
  ASSERT_TRUE(result.ok());
  double integral = 0;
  for (double o : result->hourly_occupancy) integral += o * 3600.0;
  EXPECT_NEAR(integral, total_task_seconds, 1.0);
}

TEST(ReplayTest, UtilizationBounded) {
  trace::Trace t;
  for (int i = 0; i < 100; ++i) t.AddJob(SimpleJob(i + 1, i * 1.0, 4, 200));
  auto result = ReplayTrace(t, SmallCluster());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->utilization, 0.0);
  EXPECT_LE(result->utilization, 1.0 + 1e-9);
}

// --- Task capping ---------------------------------------------------------------

TEST(ReplayTest, TaskCapPreservesTaskSeconds) {
  trace::Trace t;
  t.AddJob(SimpleJob(1, 0, 100000, 5000.0));
  ReplayOptions options = SmallCluster();
  options.max_tasks_per_job = 10;
  auto result = ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());
  // 10 merged tasks of 500s on 2 slots -> 5 waves of 500s = 2500s.
  EXPECT_NEAR(result->outcomes[0].latency, 2500.0, 0.1);
}

// Satellite regression: a zero ideal latency with nonzero observed latency
// used to report slowdown 0 (better-than-ideal), dragging MeanSlowdown
// *down* for the degenerate jobs it should flag. The convention is now
// +infinity for pure queueing on zero ideal work; only a genuinely free
// job (both zero) is slowdown 1.
TEST(ReplayTest, SlowdownConventionOnZeroIdeal) {
  JobOutcome outcome;
  outcome.ideal_latency = 40.0;
  outcome.latency = 80.0;
  EXPECT_DOUBLE_EQ(outcome.Slowdown(), 2.0);
  outcome.ideal_latency = 0.0;
  EXPECT_TRUE(std::isinf(outcome.Slowdown()));
  EXPECT_GT(outcome.Slowdown(), 0.0);
  outcome.latency = 0.0;
  EXPECT_DOUBLE_EQ(outcome.Slowdown(), 1.0);
}

// --- Scheduler comparisons --------------------------------------------------------

/// One huge job submitted just before many small jobs: the paper's
/// head-of-line-blocking scenario (section 6.2: "poor management of a
/// single large job potentially impacts performance for a large number of
/// small jobs").
trace::Trace HeadOfLineTrace() {
  trace::Trace t;
  trace::JobRecord huge = SimpleJob(1, 0, 40, 40 * 600.0, 0, 0, 1e13);
  t.AddJob(huge);
  for (int i = 0; i < 20; ++i) {
    t.AddJob(SimpleJob(2 + i, 1.0 + i, 1, 10, 0, 0, 1e6));
  }
  return t;
}

TEST(SchedulerTest, FifoBlocksSmallJobsBehindHuge) {
  auto fifo = ReplayTrace(HeadOfLineTrace(), SmallCluster("fifo"));
  auto fair = ReplayTrace(HeadOfLineTrace(), SmallCluster("fair"));
  ASSERT_TRUE(fifo.ok());
  ASSERT_TRUE(fair.ok());
  double fifo_small_p50 = fifo->LatencyQuantile(/*small_jobs=*/true, 0.5);
  double fair_small_p50 = fair->LatencyQuantile(/*small_jobs=*/true, 0.5);
  // Under FIFO the small jobs wait for the huge job's map waves.
  EXPECT_GT(fifo_small_p50, 10 * fair_small_p50);
}

TEST(SchedulerTest, TwoTierProtectsSmallJobs) {
  auto fifo = ReplayTrace(HeadOfLineTrace(), SmallCluster("fifo"));
  auto tiered = ReplayTrace(HeadOfLineTrace(), SmallCluster("two-tier"));
  ASSERT_TRUE(fifo.ok());
  ASSERT_TRUE(tiered.ok());
  EXPECT_LT(tiered->LatencyQuantile(true, 0.9),
            fifo->LatencyQuantile(true, 0.9) / 5);
  // The huge job still completes.
  EXPECT_EQ(tiered->CountJobs(false), 1u);
}

TEST(SchedulerTest, SrptLetsSmallJobsJumpTheQueue) {
  // SRPT needs no tier threshold: the small jobs' remaining work out-ranks
  // the elephant's the moment a slot frees, so they drain ahead of its
  // remaining waves.
  auto fifo = ReplayTrace(HeadOfLineTrace(), SmallCluster("fifo"));
  auto srpt = ReplayTrace(HeadOfLineTrace(), SmallCluster("srpt"));
  ASSERT_TRUE(fifo.ok());
  ASSERT_TRUE(srpt.ok());
  EXPECT_LT(srpt->LatencyQuantile(true, 0.5),
            fifo->LatencyQuantile(true, 0.5) / 10);
  // The elephant still completes.
  EXPECT_EQ(srpt->CountJobs(false), 1u);
  EXPECT_EQ(srpt->unfinished_jobs, 0u);
}

// Satellite regression: on a 1-slot pool the capacity tier's cap
// (share x slots = 0.7 truncated to 0) starved large jobs forever. The
// clamp guarantees the tier >= 1 slot, so the trace drains.
TEST(SchedulerTest, TwoTierDrainsLargeJobsOnOneSlotCluster) {
  trace::Trace t;
  t.AddJob(SimpleJob(1, 0.0, 4, 400.0, 2, 100.0, 1e13));  // large job
  for (int i = 0; i < 3; ++i) {
    t.AddJob(SimpleJob(2 + i, 5.0 + i, 1, 10.0, 0, 0.0, 1e6));
  }
  ReplayOptions options;
  options.cluster.nodes = 1;
  options.cluster.map_slots_per_node = 1;
  options.cluster.reduce_slots_per_node = 1;
  options.scheduler = "two-tier";
  auto current = ReplayTrace(t, options);
  auto legacy = ReplayTraceLegacy(t, options);
  ASSERT_TRUE(current.ok());
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(current->outcomes.size(), 4u);
  EXPECT_EQ(current->unfinished_jobs, 0u);
  EXPECT_EQ(legacy->outcomes.size(), 4u);
  EXPECT_EQ(legacy->unfinished_jobs, 0u);
  EXPECT_EQ(current->makespan, legacy->makespan);
}

TEST(SchedulerTest, FactoryNames) {
  EXPECT_EQ(MakeScheduler("fifo").value()->name(), "FIFO");
  EXPECT_EQ(MakeScheduler("FAIR").value()->name(), "Fair");
  EXPECT_EQ(MakeScheduler("two-tier").value()->name(), "TwoTier");
  EXPECT_EQ(MakeScheduler("srpt").value()->name(), "SRPT");
  EXPECT_EQ(MakeScheduler("DeadLine").value()->name(), "Deadline");
}

// Satellite regression: unknown policy names were silently mapped to
// FIFO, so a typo'd sweep replayed every cell with the wrong policy.
// They must now be a hard error that names the valid policies.
TEST(SchedulerTest, FactoryRejectsUnknownPolicies) {
  for (const char* policy : {"unknown", "fare", "", "fifo2"}) {
    auto scheduler = MakeScheduler(policy);
    ASSERT_FALSE(scheduler.ok()) << policy;
    EXPECT_NE(scheduler.status().message().find("fifo, fair, two-tier"),
              std::string::npos)
        << scheduler.status().message();
  }
  // The engines surface the same error instead of replaying as FIFO.
  trace::Trace t;
  t.AddJob(SimpleJob(1, 0.0, 2, 10));
  ReplayOptions options = SmallCluster();
  options.scheduler = "fare";
  EXPECT_FALSE(ReplayTrace(t, options).ok());
  EXPECT_FALSE(ReplayTraceLegacy(t, options).ok());
}

// --- Stragglers ---------------------------------------------------------------------

TEST(StragglerTest, InjectionIncreasesLatency) {
  trace::Trace t;
  for (int i = 0; i < 200; ++i) {
    t.AddJob(SimpleJob(i + 1, i * 50.0, 2, 60, 0, 0));
  }
  ReplayOptions clean = SmallCluster();
  ReplayOptions slow = SmallCluster();
  slow.straggler_probability = 0.5;
  slow.straggler_factor = 10.0;
  auto clean_result = ReplayTrace(t, clean);
  auto slow_result = ReplayTrace(t, slow);
  ASSERT_TRUE(clean_result.ok());
  ASSERT_TRUE(slow_result.ok());
  EXPECT_GT(slow_result->LatencyQuantile(true, 0.9),
            clean_result->LatencyQuantile(true, 0.9) * 2);
}

TEST(StragglerTest, SingleWaveJobsFullyExposed) {
  // A job with one map task hit by a straggler runs straggler_factor x
  // longer - the paper's point that few-task jobs cannot hide stragglers.
  trace::Trace t;
  t.AddJob(SimpleJob(1, 0, 1, 100));
  ReplayOptions options = SmallCluster();
  options.straggler_probability = 1.0;
  options.straggler_factor = 5.0;
  auto result = ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->outcomes[0].latency, 500.0, 0.1);
}

TEST(StragglerTest, SpeculationCapsMultiTaskJobs) {
  // 4 map tasks, all straggling 10x; with speculation the siblings expose
  // them and the penalty caps at 2x.
  trace::Trace t;
  t.AddJob(SimpleJob(1, 0, 4, 400));  // 4 tasks x 100 s
  ReplayOptions options = SmallCluster();
  options.straggler_probability = 1.0;
  options.straggler_factor = 10.0;
  auto plain = ReplayTrace(t, options);
  options.speculative_execution = true;
  auto speculative = ReplayTrace(t, options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(speculative.ok());
  // Plain: 2 waves x 1000 s; speculative: 2 waves x 200 s.
  EXPECT_NEAR(plain->outcomes[0].latency, 2000.0, 0.1);
  EXPECT_NEAR(speculative->outcomes[0].latency, 400.0, 0.1);
}

TEST(StragglerTest, SpeculationCannotHelpSingleTaskJobs) {
  // The paper's section 6.2 point: a single-task job has no sibling to
  // compare against, so speculation never triggers.
  trace::Trace t;
  t.AddJob(SimpleJob(1, 0, 1, 100));
  ReplayOptions options = SmallCluster();
  options.straggler_probability = 1.0;
  options.straggler_factor = 10.0;
  options.speculative_execution = true;
  auto result = ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->outcomes[0].latency, 1000.0, 0.1);  // full 10x
}

// --- Validation -----------------------------------------------------------------------

TEST(ReplayTest, RejectsBadInputs) {
  trace::Trace empty;
  EXPECT_FALSE(ReplayTrace(empty).ok());
  trace::Trace t;
  t.AddJob(SimpleJob(1, 0, 1, 10));
  ReplayOptions options;
  options.cluster.nodes = 0;
  EXPECT_FALSE(ReplayTrace(t, options).ok());
  options = {};
  options.max_tasks_per_job = 0;
  EXPECT_FALSE(ReplayTrace(t, options).ok());
}

// --- Failure injection ------------------------------------------------------

trace::Trace FailureFleet(int jobs = 40) {
  trace::Trace t;
  for (int i = 1; i <= jobs; ++i) {
    t.AddJob(SimpleJob(static_cast<uint64_t>(i), 5.0 * i, 4, 120, 2, 40));
  }
  return t;
}

TEST(FailureTest, RejectsBadFailureOptions) {
  trace::Trace t = FailureFleet(1);
  ReplayOptions options;
  options.failures.task_failure_probability = 1.5;
  EXPECT_FALSE(ReplayTrace(t, options).ok());
  options = {};
  options.failures.failure_point = 0.0;
  EXPECT_FALSE(ReplayTrace(t, options).ok());
  options = {};
  options.failures.max_attempts = 0;
  EXPECT_FALSE(ReplayTrace(t, options).ok());
  options = {};
  options.failures.node_loss_per_hour = -1;
  EXPECT_FALSE(ReplayTrace(t, options).ok());
  options = {};
  options.failures.retry_backoff_seconds = -1;
  EXPECT_FALSE(ReplayTrace(t, options).ok());
}

TEST(FailureTest, DisabledModelLeavesReplayUntouched) {
  // With both failure knobs at zero the failure RNG streams are never
  // consulted: results (incl. straggler draws) must equal a run with the
  // model's other knobs set to arbitrary values.
  trace::Trace t = FailureFleet();
  ReplayOptions plain = SmallCluster("fair");
  plain.straggler_probability = 0.1;
  ReplayOptions with_knobs = plain;
  with_knobs.failures.max_attempts = 2;
  with_knobs.failures.retry_backoff_seconds = 99;
  with_knobs.failures.failure_point = 0.9;
  auto a = ReplayTrace(t, plain);
  auto b = ReplayTrace(t, with_knobs);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->outcomes.size(), b->outcomes.size());
  for (size_t i = 0; i < a->outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->outcomes[i].latency, b->outcomes[i].latency);
    EXPECT_EQ(a->outcomes[i].retries, 0);
  }
  EXPECT_EQ(b->failures.task_failures, 0);
  EXPECT_EQ(b->failures.node_losses, 0);
  EXPECT_EQ(b->failures.retries, 0);
  EXPECT_DOUBLE_EQ(b->failures.failed_task_seconds, 0.0);
}

TEST(FailureTest, DeterministicForSeed) {
  trace::Trace t = FailureFleet();
  ReplayOptions options = SmallCluster("fair");
  options.straggler_probability = 0.05;
  options.failures.task_failure_probability = 0.1;
  options.failures.node_loss_per_hour = 2.0;
  options.seed = 77;
  auto a = ReplayTrace(t, options);
  auto b = ReplayTrace(t, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->outcomes.size(), b->outcomes.size());
  for (size_t i = 0; i < a->outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->outcomes[i].latency, b->outcomes[i].latency);
    EXPECT_EQ(a->outcomes[i].retries, b->outcomes[i].retries);
  }
  EXPECT_EQ(a->failures.task_failures, b->failures.task_failures);
  EXPECT_EQ(a->failures.node_losses, b->failures.node_losses);
  EXPECT_EQ(a->failures.tasks_lost_to_nodes, b->failures.tasks_lost_to_nodes);
  EXPECT_DOUBLE_EQ(a->failures.failed_task_seconds,
                   b->failures.failed_task_seconds);
  // A different seed must actually change the draw.
  options.seed = 78;
  auto c = ReplayTrace(t, options);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->failures.task_failures, c->failures.task_failures);
}

TEST(FailureTest, RetriesRecoverFailedTasks) {
  trace::Trace t = FailureFleet();
  ReplayOptions options = SmallCluster("fifo");
  options.failures.task_failure_probability = 0.2;
  options.failures.max_attempts = 8;  // generous budget: everything finishes
  options.failures.retry_backoff_seconds = 1.0;
  auto result = ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcomes.size(), 40u);
  EXPECT_EQ(result->unfinished_jobs, 0u);
  EXPECT_GT(result->failures.task_failures, 0);
  // Every failed attempt was eventually re-executed.
  EXPECT_EQ(result->failures.retries, result->failures.task_failures);
  EXPECT_GT(result->failures.failed_task_seconds, 0.0);
  int64_t outcome_retries = 0;
  for (const auto& o : result->outcomes) outcome_retries += o.retries;
  EXPECT_EQ(outcome_retries, result->failures.retries);
}

TEST(FailureTest, CertainFailureKillsEveryJob) {
  trace::Trace t = FailureFleet();
  ReplayOptions options = SmallCluster("fifo");
  options.failures.task_failure_probability = 1.0;
  options.failures.max_attempts = 2;
  options.failures.retry_backoff_seconds = 0.0;
  auto result = ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->outcomes.empty());
  EXPECT_EQ(result->failures.failed_jobs, 40);
  EXPECT_EQ(result->unfinished_jobs, 40u);
  EXPECT_GT(result->failures.failed_task_seconds, 0.0);
  // Wasted time never exceeds what the attempt budget allows.
  EXPECT_GT(result->failures.task_failures, 0);
}

TEST(FailureTest, FailuresSlowJobsDown) {
  trace::Trace t = FailureFleet();
  ReplayOptions clean = SmallCluster("fair");
  ReplayOptions faulty = clean;
  faulty.failures.task_failure_probability = 0.25;
  faulty.failures.max_attempts = 10;
  auto a = ReplayTrace(t, clean);
  auto b = ReplayTrace(t, faulty);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(b->outcomes.size(), 40u);
  EXPECT_GT(b->MeanSlowdown(true), a->MeanSlowdown(true));
}

TEST(FailureTest, NodeLossKillsRunningTasks) {
  trace::Trace t = FailureFleet();
  ReplayOptions options = SmallCluster("fifo");
  options.failures.node_loss_per_hour = 30.0;  // aggressive: ~1 per 2 min
  options.failures.max_attempts = 10;
  auto result = ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->failures.node_losses, 0);
  EXPECT_GT(result->failures.tasks_lost_to_nodes, 0);
  EXPECT_GT(result->failures.failed_task_seconds, 0.0);
  EXPECT_EQ(result->failures.task_failures, 0);  // only node kills active
  // Generous attempt budget: the work still completes.
  EXPECT_EQ(result->outcomes.size(), 40u);
}

TEST(FailureTest, ComposesWithStragglersAndSpeculation) {
  trace::Trace t = FailureFleet();
  ReplayOptions options = SmallCluster("two-tier");
  options.straggler_probability = 0.1;
  options.speculative_execution = true;
  options.failures.task_failure_probability = 0.1;
  options.failures.node_loss_per_hour = 5.0;
  options.failures.max_attempts = 12;
  auto result = ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcomes.size(), 40u);
  EXPECT_GT(result->failures.task_failures, 0);
  EXPECT_GT(result->failures.retries, 0);
  auto again = ReplayTrace(t, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(result->failures.retries, again->failures.retries);
}

// --- Occupancy gap jumping --------------------------------------------------

TEST(OccupancyTest, WeekLongIdleGapReplaysFast) {
  // Regression for the retired hour-by-hour Advance loop: two short jobs a
  // week apart used to cost one bucket iteration per idle hour. The
  // gap-jumping meter must fill the same buckets (zeros in between, same
  // vector length) in O(boundary hours), which shows up as wall time.
  trace::Trace t;
  t.AddJob(SimpleJob(1, 0.0, 2, 100));
  t.AddJob(SimpleJob(2, 7.0 * 86400.0, 2, 100));
  auto start = std::chrono::steady_clock::now();
  auto result = ReplayTrace(t, SmallCluster());
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcomes.size(), 2u);
  // 7 days = 168 hours; the second job finishes 50s into hour 168.
  ASSERT_EQ(result->hourly_occupancy.size(), 169u);
  double integral = 0.0;
  for (double o : result->hourly_occupancy) integral += o * 3600.0;
  EXPECT_NEAR(integral, 200.0, 1e-6);  // 2x100s maps per job, 2 jobs
  for (size_t h = 1; h < 168; ++h) {
    EXPECT_EQ(result->hourly_occupancy[h], 0.0) << "hour " << h;
  }
  // Generous bound (debug/sanitizer builds): the retired loop took
  // millions of iterations; the jump takes thousands of x fewer.
  EXPECT_LT(elapsed, 0.5);
}

TEST(OccupancyTest, MultiYearGapStillExact) {
  trace::Trace t;
  t.AddJob(SimpleJob(1, 0.0, 1, 60));
  t.AddJob(SimpleJob(2, 3.0 * 365.0 * 86400.0, 1, 60));
  auto result = ReplayTrace(t, SmallCluster());
  ASSERT_TRUE(result.ok());
  double integral = 0.0;
  for (double o : result->hourly_occupancy) integral += o * 3600.0;
  EXPECT_NEAR(integral, 120.0, 1e-6);
  EXPECT_EQ(result->hourly_occupancy.size(), 26281u);  // 3*365*24 + 1
}

// --- Scheduler tie-breaking -------------------------------------------------

TEST(SchedulerTieBreakTest, EqualJobsResolveBySubmitThenIndex) {
  // Four identical jobs, two submit-time groups. Every policy must pick
  // the earliest submit, lowest index - regardless of the order the
  // runnable list presents them (the engine maintains that list
  // incrementally, so its order is arbitrary by contract).
  std::vector<SimJob> jobs(4);
  std::vector<trace::JobRecord> records(4);
  for (size_t i = 0; i < jobs.size(); ++i) {
    records[i] = SimpleJob(i + 1, i < 2 ? 100.0 : 50.0, 4, 40);
    jobs[i].record = &records[i];
    jobs[i].submit_time = records[i].submit_time;
    jobs[i].maps_total = 4;
    jobs[i].is_small = true;
  }
  SchedulerContext context;
  const std::vector<std::vector<size_t>> permutations = {
      {0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}};
  for (const char* policy : {"fifo", "fair", "two-tier", "srpt", "deadline"}) {
    auto scheduler = MakeScheduler(policy).value();
    for (const auto& runnable : permutations) {
      // Jobs 2 and 3 share submit 50 (earliest): index 2 must win.
      EXPECT_EQ(scheduler->PickJob(jobs, runnable, TaskKind::kMap, 8,
                                   context),
                2)
          << policy;
    }
    // With the earliest pair excluded, jobs 0/1 share submit 100: index 0.
    for (const std::vector<size_t>& runnable :
         {std::vector<size_t>{0, 1}, std::vector<size_t>{1, 0}}) {
      EXPECT_EQ(scheduler->PickJob(jobs, runnable, TaskKind::kMap, 8,
                                   context),
                0)
          << policy;
    }
  }
}

TEST(SchedulerTieBreakTest, FairTieOnSlotCountsPinsToSubmitThenIndex) {
  std::vector<SimJob> jobs(3);
  std::vector<trace::JobRecord> records(3);
  for (size_t i = 0; i < jobs.size(); ++i) {
    records[i] = SimpleJob(i + 1, 10.0, 4, 40);
    jobs[i].record = &records[i];
    jobs[i].submit_time = 10.0;
    jobs[i].maps_total = 4;
  }
  jobs[0].maps_launched = 2;  // holds more slots: loses despite index 0
  FairScheduler fair;
  SchedulerContext context;
  for (const std::vector<size_t>& runnable :
       {std::vector<size_t>{0, 1, 2}, std::vector<size_t>{2, 1, 0}}) {
    EXPECT_EQ(fair.PickJob(jobs, runnable, TaskKind::kMap, 8, context), 1);
  }
}

TEST(SchedulerTieBreakTest, SrptPicksLeastRemainingWorkUnderPermutation) {
  std::vector<SimJob> jobs(4);
  std::vector<trace::JobRecord> records(4);
  for (size_t i = 0; i < jobs.size(); ++i) {
    records[i] = SimpleJob(i + 1, 10.0 * static_cast<double>(i), 4, 40);
    jobs[i].record = &records[i];
    jobs[i].submit_time = records[i].submit_time;
    jobs[i].maps_total = 4;
    // Remaining work 400, 320, 240, 160: the latest submit has the least.
    jobs[i].map_task_duration = 100.0 - 20.0 * static_cast<double>(i);
  }
  SrptScheduler srpt;
  SchedulerContext context;
  const std::vector<std::vector<size_t>> permutations = {
      {0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}};
  for (const auto& runnable : permutations) {
    // FIFO would pick 0; SRPT must pick 3 regardless of list order.
    EXPECT_EQ(srpt.PickJob(jobs, runnable, TaskKind::kMap, 8, context), 3);
  }
  // Finishing most of job 0's wave shrinks its key below everyone's: the
  // priority is *remaining* work, not total size.
  jobs[0].maps_finished = 3;  // remaining 1 x 100 = 100 < job 3's 160
  for (const auto& runnable : permutations) {
    EXPECT_EQ(srpt.PickJob(jobs, runnable, TaskKind::kMap, 8, context), 0);
  }
}

TEST(SchedulerTieBreakTest, DeadlineRanksEdfAndEscalatesOverdue) {
  std::vector<SimJob> jobs(4);
  std::vector<trace::JobRecord> records(4);
  for (size_t i = 0; i < jobs.size(); ++i) {
    records[i] = SimpleJob(i + 1, 0.0, 4, 40);
    jobs[i].record = &records[i];
    jobs[i].submit_time = 0.0;
    jobs[i].maps_total = 4;
    jobs[i].map_task_duration = 10.0;
  }
  jobs[0].deadline = -1.0;  // no deadline: ranks last
  jobs[1].deadline = 500.0;
  jobs[2].deadline = 300.0;
  jobs[3].deadline = 400.0;
  jobs[2].map_task_duration = 50.0;  // most remaining work
  DeadlineScheduler edf;
  SchedulerContext context;
  const std::vector<std::vector<size_t>> permutations = {
      {0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}};
  // Nothing overdue yet: earliest deadline (job 2) wins.
  context.now = 100.0;
  for (const auto& runnable : permutations) {
    EXPECT_EQ(edf.PickJob(jobs, runnable, TaskKind::kMap, 8, context), 2);
  }
  // Jobs 2 and 3 are now overdue. Escalation ranks the overdue pool by
  // least remaining work - job 3 (40s) beats job 2 (200s) even though
  // job 2's deadline is earlier - and outranks the on-time job 1.
  context.now = 450.0;
  for (const auto& runnable : permutations) {
    EXPECT_EQ(edf.PickJob(jobs, runnable, TaskKind::kMap, 8, context), 3);
  }
  // With every deadline passed, the no-deadline job still ranks last.
  context.now = 600.0;
  for (const std::vector<size_t>& runnable :
       {std::vector<size_t>{0, 1}, std::vector<size_t>{1, 0}}) {
    EXPECT_EQ(edf.PickJob(jobs, runnable, TaskKind::kMap, 8, context), 1);
  }
}

// --- Engine vs captured baseline -------------------------------------------

// The calendar-queue engine against ReplayTraceLegacy - the pre-rebuild
// engine kept verbatim in replay_legacy.cc as the captured baseline. The
// ISSUE's acceptance bar: bit-identical ReplayResults on FB-2010-style
// traces for every policy, with and without failure injection.

trace::Trace Fb2010Style(size_t jobs, uint64_t seed) {
  // The paper's FB-2010 shape in miniature: >90% small jobs (a few short
  // tasks), a heavy tail of large multi-wave jobs, bursty submits.
  trace::Trace t;
  Pcg32 rng(seed, /*stream=*/0xfb10);
  double submit = 0.0;
  for (size_t i = 0; i < jobs; ++i) {
    submit += rng.NextExponential(1.0 / 20.0);  // ~20s mean interarrival
    if (rng.NextBernoulli(0.92)) {
      int64_t maps = rng.NextInt(1, 4);
      t.AddJob(SimpleJob(i + 1, submit, maps,
                         static_cast<double>(maps) * rng.NextDouble(5, 60),
                         rng.NextBernoulli(0.3) ? 1 : 0, 15.0, 1e6));
    } else {
      int64_t maps = rng.NextInt(50, 400);
      int64_t reduces = rng.NextInt(5, 40);
      t.AddJob(SimpleJob(
          i + 1, submit, maps,
          static_cast<double>(maps) * rng.NextDouble(30, 300), reduces,
          static_cast<double>(reduces) * rng.NextDouble(20, 120), 5e12));
    }
  }
  return t;
}

void ExpectBitIdentical(const ReplayResult& a, const ReplayResult& b,
                        const std::string& what) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size()) << what;
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    ASSERT_EQ(a.outcomes[i].job_id, b.outcomes[i].job_id)
        << what << " outcome " << i;
    ASSERT_EQ(a.outcomes[i].latency, b.outcomes[i].latency)
        << what << " outcome " << i;
    ASSERT_EQ(a.outcomes[i].ideal_latency, b.outcomes[i].ideal_latency)
        << what << " outcome " << i;
    ASSERT_EQ(a.outcomes[i].retries, b.outcomes[i].retries)
        << what << " outcome " << i;
    ASSERT_EQ(a.outcomes[i].is_small, b.outcomes[i].is_small)
        << what << " outcome " << i;
    ASSERT_EQ(a.outcomes[i].deadline, b.outcomes[i].deadline)
        << what << " outcome " << i;
    ASSERT_EQ(a.outcomes[i].missed_sla, b.outcomes[i].missed_sla)
        << what << " outcome " << i;
    ASSERT_EQ(a.outcomes[i].tenant, b.outcomes[i].tenant)
        << what << " outcome " << i;
    ASSERT_EQ(a.outcomes[i].preempted_tasks, b.outcomes[i].preempted_tasks)
        << what << " outcome " << i;
    ASSERT_EQ(a.outcomes[i].admission_delay, b.outcomes[i].admission_delay)
        << what << " outcome " << i;
  }
  EXPECT_EQ(a.scheduler, b.scheduler) << what;
  EXPECT_EQ(a.makespan, b.makespan) << what;
  EXPECT_EQ(a.utilization, b.utilization) << what;
  EXPECT_EQ(a.hourly_occupancy, b.hourly_occupancy) << what;
  EXPECT_EQ(a.unfinished_jobs, b.unfinished_jobs) << what;
  EXPECT_EQ(a.failures.task_failures, b.failures.task_failures) << what;
  EXPECT_EQ(a.failures.node_losses, b.failures.node_losses) << what;
  EXPECT_EQ(a.failures.tasks_lost_to_nodes, b.failures.tasks_lost_to_nodes)
      << what;
  EXPECT_EQ(a.failures.retries, b.failures.retries) << what;
  EXPECT_EQ(a.failures.failed_jobs, b.failures.failed_jobs) << what;
  EXPECT_EQ(a.failures.failed_task_seconds, b.failures.failed_task_seconds)
      << what;
  EXPECT_EQ(a.sla.small_jobs_with_deadline, b.sla.small_jobs_with_deadline)
      << what;
  EXPECT_EQ(a.sla.large_jobs_with_deadline, b.sla.large_jobs_with_deadline)
      << what;
  EXPECT_EQ(a.sla.small_misses, b.sla.small_misses) << what;
  EXPECT_EQ(a.sla.large_misses, b.sla.large_misses) << what;
  EXPECT_EQ(a.sla.preemption_rounds, b.sla.preemption_rounds) << what;
  EXPECT_EQ(a.sla.preempted_tasks, b.sla.preempted_tasks) << what;
  EXPECT_EQ(a.sla.admission_parked_jobs, b.sla.admission_parked_jobs) << what;
  EXPECT_EQ(a.sla.total_admission_delay, b.sla.total_admission_delay) << what;
  ASSERT_EQ(a.sla.tenants.size(), b.sla.tenants.size()) << what;
  for (size_t i = 0; i < a.sla.tenants.size(); ++i) {
    EXPECT_EQ(a.sla.tenants[i].tenant, b.sla.tenants[i].tenant) << what;
    EXPECT_EQ(a.sla.tenants[i].jobs, b.sla.tenants[i].jobs) << what;
    EXPECT_EQ(a.sla.tenants[i].parked_jobs, b.sla.tenants[i].parked_jobs)
        << what;
    EXPECT_EQ(a.sla.tenants[i].total_admission_delay,
              b.sla.tenants[i].total_admission_delay)
        << what;
    EXPECT_EQ(a.sla.tenants[i].max_admission_delay,
              b.sla.tenants[i].max_admission_delay)
        << what;
  }
}

TEST(EngineBaselineTest, BitIdenticalToLegacyAcrossPoliciesPlain) {
  trace::Trace t = Fb2010Style(600, 2010);
  for (const char* policy : {"fifo", "fair", "two-tier", "srpt", "deadline"}) {
    ReplayOptions options;
    options.cluster.nodes = 30;
    options.scheduler = policy;
    auto current = ReplayTrace(t, options);
    auto legacy = ReplayTraceLegacy(t, options);
    ASSERT_TRUE(current.ok());
    ASSERT_TRUE(legacy.ok());
    ExpectBitIdentical(*current, *legacy, policy);
  }
}

TEST(EngineBaselineTest, BitIdenticalToLegacyWithStragglersAndFailures) {
  trace::Trace t = Fb2010Style(400, 417);
  for (const char* policy : {"fifo", "fair", "two-tier", "srpt", "deadline"}) {
    ReplayOptions options;
    options.cluster.nodes = 20;
    options.scheduler = policy;
    options.straggler_probability = 0.1;
    options.straggler_factor = 6.0;
    options.speculative_execution = true;
    options.failures.task_failure_probability = 0.08;
    options.failures.node_loss_per_hour = 2.0;
    options.failures.max_attempts = 3;
    options.failures.retry_backoff_seconds = 20.0;
    auto current = ReplayTrace(t, options);
    auto legacy = ReplayTraceLegacy(t, options);
    ASSERT_TRUE(current.ok());
    ASSERT_TRUE(legacy.ok());
    ExpectBitIdentical(*current, *legacy, policy);
  }
}

TEST(EngineBaselineTest, BitIdenticalToLegacyWithDependencies) {
  trace::Trace t = Fb2010Style(200, 88);
  ReplayOptions options;
  options.cluster.nodes = 10;
  options.scheduler = "fair";
  // Chain every fifth job onto the previous multiple of five.
  for (uint64_t id = 6; id <= 200; id += 5) {
    options.dependencies[id] = {id - 5};
  }
  auto current = ReplayTrace(t, options);
  auto legacy = ReplayTraceLegacy(t, options);
  ASSERT_TRUE(current.ok());
  ASSERT_TRUE(legacy.ok());
  ExpectBitIdentical(*current, *legacy, "fair+deps");
}

TEST(EngineBaselineTest, BitIdenticalOnSaturatedTinyCluster) {
  // Deep backlog: every slot contested, the grant loop's batch fairness
  // and tie-breaking fully exercised.
  trace::Trace t = Fb2010Style(300, 7);
  ReplayOptions options;
  options.cluster.nodes = 1;
  options.cluster.map_slots_per_node = 3;
  options.cluster.reduce_slots_per_node = 2;
  for (const char* policy : {"fifo", "fair", "two-tier", "srpt", "deadline"}) {
    options.scheduler = policy;
    auto current = ReplayTrace(t, options);
    auto legacy = ReplayTraceLegacy(t, options);
    ASSERT_TRUE(current.ok());
    ASSERT_TRUE(legacy.ok());
    ExpectBitIdentical(*current, *legacy, policy);
  }
}

TEST(EngineBaselineTest, BitIdenticalToLegacyWithAdmissionControl) {
  // Admission (parked jobs, tenant tokens, SLA accounting) is implemented
  // separately in both engines; the oracle contract must hold with it on,
  // including under failure injection.
  trace::Trace t = Fb2010Style(300, 53);
  ReplayOptions options;
  options.cluster.nodes = 10;
  options.sla.tenants = 4;
  options.sla.tenant_max_running = 2;
  options.failures.task_failure_probability = 0.05;
  options.failures.node_loss_per_hour = 1.0;
  for (const char* policy : {"fifo", "srpt", "deadline"}) {
    options.scheduler = policy;
    auto current = ReplayTrace(t, options);
    auto legacy = ReplayTraceLegacy(t, options);
    ASSERT_TRUE(current.ok());
    ASSERT_TRUE(legacy.ok());
    ExpectBitIdentical(*current, *legacy, std::string(policy) + "+admission");
  }
}

// --- SLA tier: deadlines, preemption, admission control --------------------

TEST(SlaTest, RejectsBadSlaOptions) {
  trace::Trace t;
  t.AddJob(SimpleJob(1, 0.0, 1, 10));
  ReplayOptions options;
  options.sla.small_multiplier = 0.0;
  EXPECT_FALSE(ReplayTrace(t, options).ok());
  EXPECT_FALSE(ReplayTraceLegacy(t, options).ok());
  options = {};
  options.sla.large_multiplier = -3.0;
  EXPECT_FALSE(ReplayTrace(t, options).ok());
  options = {};
  options.sla.preemption_budget = -1;
  EXPECT_FALSE(ReplayTrace(t, options).ok());
  options = {};
  options.sla.tenants = -2;
  EXPECT_FALSE(ReplayTrace(t, options).ok());
  options = {};
  options.sla.tenants = 2;
  options.sla.tenant_max_running = 0;
  EXPECT_FALSE(ReplayTrace(t, options).ok());
}

TEST(SlaTest, LegacyEngineRejectsPreemption) {
  // The frozen oracle predates preemption and must refuse rather than
  // silently diverge from the calendar engine.
  trace::Trace t;
  t.AddJob(SimpleJob(1, 0.0, 1, 10));
  ReplayOptions options = SmallCluster("fifo");
  options.sla.preemption_budget = 5;
  EXPECT_FALSE(ReplayTraceLegacy(t, options).ok());
  EXPECT_TRUE(ReplayTrace(t, options).ok());
}

TEST(SlaTest, DeadlinesPopulatedAndMissesCounted) {
  // Every job gets deadline = submit + ideal x multiplier; under FIFO the
  // head-of-line elephant makes the small jobs blow theirs. The small
  // multiplier is widened to ~2 elephant waves so EDF - which cannot
  // preempt the first wave on a 2-slot cluster - can still meet it.
  ReplayOptions options = SmallCluster("fifo");
  options.sla.small_multiplier = 100.0;
  auto fifo = ReplayTrace(HeadOfLineTrace(), options);
  options.scheduler = "deadline";
  auto edf = ReplayTrace(HeadOfLineTrace(), options);
  ASSERT_TRUE(fifo.ok());
  ASSERT_TRUE(edf.ok());
  EXPECT_EQ(fifo->sla.small_jobs_with_deadline, 20);
  EXPECT_EQ(fifo->sla.large_jobs_with_deadline, 1);
  for (const auto& outcome : fifo->outcomes) {
    EXPECT_GE(outcome.deadline, 0.0);
    EXPECT_EQ(outcome.missed_sla,
              outcome.submit_time + outcome.latency > outcome.deadline);
  }
  EXPECT_GT(fifo->sla.small_misses, 0);
  EXPECT_GT(fifo->sla.MissFraction(true), 0.5);
  // Deadline scheduling rescues the small-job mass.
  EXPECT_LT(edf->sla.small_misses, fifo->sla.small_misses);
}

TEST(SlaTest, KilledJobsCountAsSlaMisses) {
  // A job that exhausts its attempts never finishes - that is the worst
  // possible SLA outcome and must be a miss, not a hole in the count.
  trace::Trace t = FailureFleet();
  ReplayOptions options = SmallCluster("fifo");
  options.failures.task_failure_probability = 1.0;
  options.failures.max_attempts = 2;
  options.failures.retry_backoff_seconds = 0.0;
  auto result = ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->failures.failed_jobs, 40);
  EXPECT_EQ(result->sla.small_jobs_with_deadline, 40);
  EXPECT_EQ(result->sla.small_misses, 40);
  EXPECT_DOUBLE_EQ(result->sla.MissFraction(true), 1.0);
}

TEST(SlaTest, PreemptionRescuesInteractiveJobsUnderElephant) {
  trace::Trace t = HeadOfLineTrace();
  ReplayOptions plain = SmallCluster("fifo");
  ReplayOptions preempt = plain;
  preempt.sla.preemption_budget = 200;
  auto a = ReplayTrace(t, plain);
  auto b = ReplayTrace(t, preempt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Revoked elephant tasks hand their slots to the small jobs. (Rescue is
  // wave-quantized: revocation pauses while phantom completion events of
  // already-revoked tasks are in flight, so small jobs wait at most ~one
  // elephant task duration instead of the full 20-wave backlog.)
  EXPECT_GT(b->sla.preempted_tasks, 0);
  EXPECT_GT(b->sla.preemption_rounds, 0);
  EXPECT_LT(b->LatencyQuantile(true, 0.9), a->LatencyQuantile(true, 0.9) / 4);
  // ...and the revoked work is re-enqueued: the elephant still completes.
  EXPECT_EQ(b->CountJobs(false), 1u);
  EXPECT_EQ(b->unfinished_jobs, 0u);
  // Per-job preemption counts roll up to the aggregate.
  int64_t preempted = 0;
  for (const auto& outcome : b->outcomes) preempted += outcome.preempted_tasks;
  EXPECT_EQ(preempted, b->sla.preempted_tasks);
  // Preemptive replays are deterministic: run twice, compare everything.
  auto c = ReplayTrace(t, preempt);
  ASSERT_TRUE(c.ok());
  ExpectBitIdentical(*b, *c, "preemption determinism");
}

TEST(SlaTest, PreemptionBudgetIsBounded) {
  trace::Trace t = HeadOfLineTrace();
  ReplayOptions options = SmallCluster("fifo");
  options.sla.preemption_budget = 3;
  auto result = ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->sla.preempted_tasks, 3);
  EXPECT_EQ(result->unfinished_jobs, 0u);
}

TEST(SlaTest, PreemptionComposesWithFailuresDeterministically) {
  // The acceptance bar for the preemptive tier: with stragglers, task
  // failures, and node losses all active, two runs are bit-identical.
  trace::Trace t = Fb2010Style(300, 99);
  ReplayOptions options;
  options.cluster.nodes = 2;
  options.scheduler = "srpt";
  options.sla.preemption_budget = 500;
  options.straggler_probability = 0.1;
  options.speculative_execution = true;
  options.failures.task_failure_probability = 0.05;
  options.failures.node_loss_per_hour = 2.0;
  auto a = ReplayTrace(t, options);
  auto b = ReplayTrace(t, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a->sla.preempted_tasks, 0);
  ExpectBitIdentical(*a, *b, "preemption+failures determinism");
}

TEST(SlaTest, AdmissionSerializesTenantJobs) {
  // Four 10s single-task jobs, one tenant, cap 1: without admission two
  // run concurrently on the 2-slot cluster; with it they run strictly
  // serially (latencies 10/20/30/40) and the wait is accounted.
  trace::Trace t;
  for (int i = 0; i < 4; ++i) {
    t.AddJob(SimpleJob(i + 1, 0.0, 1, 10));
  }
  ReplayOptions options = SmallCluster("fifo");
  options.sla.tenants = 1;
  options.sla.tenant_max_running = 1;
  auto result = ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outcomes.size(), 4u);
  std::vector<double> latencies;
  for (const auto& outcome : result->outcomes) {
    latencies.push_back(outcome.latency);
  }
  std::sort(latencies.begin(), latencies.end());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(latencies[i], 10.0 * static_cast<double>(i + 1), 0.01);
  }
  EXPECT_EQ(result->sla.admission_parked_jobs, 3);
  EXPECT_GT(result->sla.total_admission_delay, 0.0);
  ASSERT_EQ(result->sla.tenants.size(), 1u);
  EXPECT_EQ(result->sla.tenants[0].jobs, 4);
  EXPECT_EQ(result->sla.tenants[0].parked_jobs, 3);
  EXPECT_GT(result->sla.tenants[0].max_admission_delay, 0.0);
  double outcome_delay = 0.0;
  for (const auto& outcome : result->outcomes) {
    outcome_delay += outcome.admission_delay;
  }
  EXPECT_DOUBLE_EQ(outcome_delay, result->sla.total_admission_delay);
  // The oracle agrees token for token.
  auto legacy = ReplayTraceLegacy(t, options);
  ASSERT_TRUE(legacy.ok());
  ExpectBitIdentical(*result, *legacy, "admission serialization");
}

TEST(SlaTest, AdmissionComposesWithDependenciesWithoutDeadlock) {
  // Tokens only ever go to arrived, parent-free jobs, so a child behind a
  // parked parent cannot wedge the tenant queue.
  trace::Trace t;
  for (int i = 0; i < 6; ++i) {
    t.AddJob(SimpleJob(i + 1, 0.0, 1, 30));
  }
  ReplayOptions options = SmallCluster("fair");
  options.sla.tenants = 2;
  options.sla.tenant_max_running = 1;
  options.dependencies[4] = {1};
  options.dependencies[6] = {3};
  auto current = ReplayTrace(t, options);
  auto legacy = ReplayTraceLegacy(t, options);
  ASSERT_TRUE(current.ok());
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(current->outcomes.size(), 6u);
  EXPECT_EQ(current->unfinished_jobs, 0u);
  // Tenant assignment is job_id % tenants.
  for (const auto& outcome : current->outcomes) {
    EXPECT_EQ(outcome.tenant, static_cast<int>(outcome.job_id % 2));
  }
  ExpectBitIdentical(*current, *legacy, "admission+deps");
}

TEST(SlaTest, PreemptionAndAdmissionComposeEndToEnd) {
  // The full SLA tier at once on a saturated mix: deadline scheduling,
  // elephant preemption, and per-tenant admission, twice, bit-identical.
  trace::Trace t = Fb2010Style(250, 7);
  ReplayOptions options;
  options.cluster.nodes = 2;
  options.scheduler = "deadline";
  options.sla.preemption_budget = 300;
  options.sla.tenants = 3;
  options.sla.tenant_max_running = 4;
  options.failures.task_failure_probability = 0.03;
  auto a = ReplayTrace(t, options);
  auto b = ReplayTrace(t, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->sla.tenants.size(), 3u);
  ExpectBitIdentical(*a, *b, "full SLA tier determinism");
}

// --- ReplayTemplate: the shared build phase behind sweeps ------------------

TEST(ReplayTemplateTest, BuildOnceReplayManyMatchesBothEngines) {
  trace::Trace t = Fb2010Style(300, 61);
  auto tpl = ReplayTemplate::Build(t);
  ASSERT_TRUE(tpl.ok());
  EXPECT_EQ(tpl->job_count(), 300u);
  for (const char* policy : {"fifo", "fair", "two-tier"}) {
    for (uint64_t seed : {7u, 19u}) {
      ReplayOptions options;
      options.cluster.nodes = 12;
      options.scheduler = policy;
      options.seed = seed;
      options.straggler_probability = 0.05;
      options.failures.task_failure_probability = 0.03;
      auto shared = tpl->Replay(options);
      auto direct = ReplayTrace(t, options);
      auto legacy = ReplayTraceLegacy(t, options);
      ASSERT_TRUE(shared.ok());
      ASSERT_TRUE(direct.ok());
      ASSERT_TRUE(legacy.ok());
      ExpectBitIdentical(*shared, *direct, policy);
      ExpectBitIdentical(*shared, *legacy, policy);
    }
  }
}

TEST(ReplayTemplateTest, ArenaResetReuseStaysBitIdentical) {
  trace::Trace t = Fb2010Style(250, 33);
  ReplayOptions base;
  base.cluster.nodes = 8;
  // Chain some jobs so the CSR dependency path runs arena-backed too.
  for (uint64_t id = 10; id <= 250; id += 10) base.dependencies[id] = {id - 5};
  auto tpl = ReplayTemplate::Build(t, base);
  ASSERT_TRUE(tpl.ok());
  Arena arena;
  for (int epoch = 0; epoch < 4; ++epoch) {
    ReplayOptions options = base;
    options.scheduler = (epoch % 2 == 0) ? "fair" : "two-tier";
    options.seed = 100 + static_cast<uint64_t>(epoch);
    auto warm = tpl->Replay(options, &arena);
    arena.Reset();
    auto fresh = tpl->Replay(options);  // no arena: plain heap
    ASSERT_TRUE(warm.ok());
    ASSERT_TRUE(fresh.ok());
    ExpectBitIdentical(*warm, *fresh, "arena epoch");
  }
  // Warm lanes re-carve blocks instead of growing the reservation.
  const size_t reserved = arena.reserved_bytes();
  ReplayOptions options = base;
  auto again = tpl->Replay(options, &arena);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

TEST(ReplayTemplateTest, RejectsOptionsTheTemplateWasNotBuiltFor) {
  trace::Trace t = Fb2010Style(50, 5);
  auto tpl = ReplayTemplate::Build(t);
  ASSERT_TRUE(tpl.ok());

  ReplayOptions sweepable;  // per-run axes may differ freely
  sweepable.scheduler = "fair";
  sweepable.cluster.nodes = 3;
  sweepable.seed = 999;
  sweepable.straggler_probability = 0.5;
  sweepable.failures.task_failure_probability = 0.2;
  EXPECT_TRUE(tpl->Compatible(sweepable));
  EXPECT_TRUE(tpl->Replay(sweepable).ok());

  ReplayOptions different_cap;
  different_cap.max_tasks_per_job = 17;
  EXPECT_FALSE(tpl->Compatible(different_cap));
  EXPECT_FALSE(tpl->Replay(different_cap).ok());

  ReplayOptions different_threshold;
  different_threshold.small_job_bytes = 1.0;
  EXPECT_FALSE(tpl->Compatible(different_threshold));
  EXPECT_FALSE(tpl->Replay(different_threshold).ok());

  ReplayOptions different_deps;
  different_deps.dependencies[2] = {1};
  EXPECT_FALSE(tpl->Compatible(different_deps));
  EXPECT_FALSE(tpl->Replay(different_deps).ok());
}

}  // namespace
}  // namespace swim::sim

// Tests for the monotonic arena allocator (common/arena.h): alignment
// guarantees, block reuse across Reset() epochs, the large-request
// fallback, and the ArenaAllocator/ArenaVector std-container adapter —
// the allocator the sweep lanes lean on to replay a configuration with
// ~zero heap mallocs once warm.
#include "common/arena.h"

#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"

namespace swim {
namespace {

TEST(ArenaTest, RespectsEveryPowerOfTwoAlignment) {
  Arena arena;
  for (size_t alignment = 1; alignment <= 128; alignment *= 2) {
    for (int i = 0; i < 8; ++i) {
      // Odd sizes on purpose: the next allocation must re-align.
      void* p = arena.Allocate(alignment + 3, alignment);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignment, 0u)
          << "alignment " << alignment << " request " << i;
      std::memset(p, 0xab, alignment + 3);  // ASan checks writability
    }
  }
}

TEST(ArenaTest, ZeroByteAllocationsAreDistinct) {
  Arena arena;
  void* a = arena.Allocate(0, 1);
  void* b = arena.Allocate(0, 1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);  // container sentinels must not alias
}

TEST(ArenaTest, ResetReusesBlocksWithoutNewReservation) {
  Arena arena(/*block_bytes=*/4096);
  auto fill = [&arena] {
    for (int i = 0; i < 100; ++i) arena.Allocate(256, 8);
  };
  fill();
  const size_t reserved = arena.reserved_bytes();
  const size_t blocks = arena.block_count();
  EXPECT_GT(reserved, 0u);
  for (int epoch = 0; epoch < 10; ++epoch) {
    arena.Reset();
    EXPECT_EQ(arena.used_bytes(), 0u);
    fill();
    // The whole point: later epochs re-carve the same memory.
    EXPECT_EQ(arena.reserved_bytes(), reserved) << "epoch " << epoch;
    EXPECT_EQ(arena.block_count(), blocks) << "epoch " << epoch;
  }
}

TEST(ArenaTest, LargeRequestsGetDedicatedBlocks) {
  Arena arena(/*block_bytes=*/1024);
  // 16x the block size: must fall back to a dedicated block, not fail.
  void* big = arena.Allocate(16 * 1024, 64);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(big) % 64, 0u);
  std::memset(big, 0x5a, 16 * 1024);
  // Small allocations still work alongside the oversized block.
  void* small = arena.Allocate(16, 8);
  ASSERT_NE(small, nullptr);
  std::memset(small, 0x5b, 16);
  EXPECT_GE(arena.reserved_bytes(), 16 * 1024u);
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena(/*block_bytes=*/512);  // small blocks force frequent spills
  std::vector<unsigned char*> ptrs;
  for (int i = 0; i < 200; ++i) {
    auto* p = static_cast<unsigned char*>(arena.Allocate(24, 8));
    std::memset(p, i & 0xff, 24);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 200; ++i) {
    for (size_t b = 0; b < 24; ++b) {
      ASSERT_EQ(ptrs[i][b], static_cast<unsigned char>(i & 0xff))
          << "allocation " << i << " clobbered at byte " << b;
    }
  }
}

TEST(ArenaVectorTest, GrowsInsideTheArena) {
  Arena arena;
  ArenaVector<int> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 10000; ++i) v.push_back(i);
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), int64_t{0}),
            int64_t{10000} * 9999 / 2);
  EXPECT_GT(arena.used_bytes(), 10000 * sizeof(int) / 2);
}

TEST(ArenaVectorTest, ResetThenRebuildIsStable) {
  Arena arena;
  for (int epoch = 0; epoch < 5; ++epoch) {
    ArenaVector<double> v{ArenaAllocator<double>(&arena)};
    v.reserve(1024);
    for (int i = 0; i < 1024; ++i) v.push_back(epoch * 1000.0 + i);
    EXPECT_EQ(v.back(), epoch * 1000.0 + 1023);
    v = ArenaVector<double>{ArenaAllocator<double>(&arena)};  // drop refs
    arena.Reset();
  }
}

TEST(ArenaVectorTest, DefaultAllocatorFallsBackToHeap) {
  // A default-constructed ArenaAllocator has no arena: it must behave
  // like std::allocator (and free properly — ASan would flag a leak).
  ArenaVector<int> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(v[999], 999);
}

TEST(ArenaAllocatorTest, EqualityTracksTheArena) {
  Arena a;
  Arena b;
  ArenaAllocator<int> on_a(&a);
  ArenaAllocator<int> also_on_a(&a);
  ArenaAllocator<int> on_b(&b);
  ArenaAllocator<double> rebound(on_a);
  EXPECT_TRUE(on_a == also_on_a);
  EXPECT_TRUE(on_a == rebound);
  EXPECT_FALSE(on_a == on_b);
  EXPECT_TRUE(on_a != on_b);
}

}  // namespace
}  // namespace swim

#include <string>

#include "common/units.h"
#include "frameworks/hive.h"
#include "frameworks/pig.h"
#include "frameworks/query_plan.h"
#include "frameworks/workflow.h"
#include "gtest/gtest.h"
#include "sim/replay.h"

namespace swim::frameworks {
namespace {

// --- Hive compiler ---------------------------------------------------------

TEST(HiveCompilerTest, PureSelectIsMapOnly) {
  HiveQuerySpec spec;
  spec.kind = HiveQuerySpec::Kind::kSelect;
  spec.selectivity = 0.1;
  spec.projection = 0.5;
  auto chain = CompileHiveQuery(spec);
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->stages.size(), 1u);
  EXPECT_TRUE(chain->stages[0].map_only);
  EXPECT_DOUBLE_EQ(chain->stages[0].shuffle_ratio, 0.0);
  EXPECT_NEAR(ChainOutputRatio(*chain), 0.05, 1e-12);
  EXPECT_EQ(chain->name_word, "select");
  EXPECT_EQ(chain->framework, trace::Framework::kHive);
}

TEST(HiveCompilerTest, GroupByAddsShuffleStage) {
  HiveQuerySpec spec;
  spec.kind = HiveQuerySpec::Kind::kInsert;
  spec.group_by = true;
  spec.aggregation_ratio = 0.01;
  auto chain = CompileHiveQuery(spec);
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->stages.size(), 1u);
  EXPECT_FALSE(chain->stages[0].map_only);
  EXPECT_GT(chain->stages[0].shuffle_ratio, 0.0);
  EXPECT_NEAR(ChainOutputRatio(*chain), 0.01, 1e-12);
  EXPECT_EQ(chain->name_word, "insert");
}

TEST(HiveCompilerTest, JoinsAddStages) {
  HiveQuerySpec spec;
  spec.kind = HiveQuerySpec::Kind::kFromInsert;
  spec.joins = 2;
  spec.group_by = true;
  auto chain = CompileHiveQuery(spec);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->stages.size(), 3u);  // 2 joins + 1 group-by
  EXPECT_EQ(chain->name_word, "from");
}

TEST(HiveCompilerTest, OrderByAppendsStage) {
  HiveQuerySpec spec;
  spec.group_by = true;
  spec.order_by = true;
  auto chain = CompileHiveQuery(spec);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->stages.size(), 2u);
  EXPECT_EQ(chain->stages.back().role, "order-by");
}

TEST(HiveCompilerTest, RejectsBadRatios) {
  HiveQuerySpec spec;
  spec.selectivity = 0.0;
  EXPECT_FALSE(CompileHiveQuery(spec).ok());
  spec = HiveQuerySpec{};
  spec.projection = 1.5;
  EXPECT_FALSE(CompileHiveQuery(spec).ok());
  spec = HiveQuerySpec{};
  spec.joins = -1;
  EXPECT_FALSE(CompileHiveQuery(spec).ok());
  spec = HiveQuerySpec{};
  spec.group_by = true;
  spec.aggregation_ratio = 0.0;
  EXPECT_FALSE(CompileHiveQuery(spec).ok());
}

TEST(HiveCompilerTest, QueryTextMentionsClauses) {
  HiveQuerySpec spec;
  spec.kind = HiveQuerySpec::Kind::kInsert;
  spec.joins = 1;
  spec.group_by = true;
  spec.selectivity = 0.2;
  std::string text = HiveQueryText(spec);
  EXPECT_NE(text.find("INSERT"), std::string::npos);
  EXPECT_NE(text.find("JOIN"), std::string::npos);
  EXPECT_NE(text.find("GROUP BY"), std::string::npos);
  EXPECT_NE(text.find("WHERE"), std::string::npos);
}

// --- Pig compiler ------------------------------------------------------------

TEST(PigCompilerTest, MapSideOpsFuseToOneJob) {
  PigScriptSpec spec;
  spec.ops = {{PigOp::Kind::kLoad, 1.0},
              {PigOp::Kind::kFilter, 0.2},
              {PigOp::Kind::kForEach, 0.5},
              {PigOp::Kind::kStore, 1.0}};
  auto chain = CompilePigScript(spec);
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->stages.size(), 1u);
  EXPECT_TRUE(chain->stages[0].map_only);
  EXPECT_NEAR(ChainOutputRatio(*chain), 0.1, 1e-12);
  EXPECT_EQ(chain->framework, trace::Framework::kPig);
}

TEST(PigCompilerTest, BlockingOpsCutStages) {
  auto chain = CompilePigScript(PigJoinScript(0.5, 0.8, 0.1));
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->stages.size(), 2u);  // cogroup + group
  EXPECT_GT(chain->stages[0].shuffle_ratio, 0.0);
}

TEST(PigCompilerTest, FilterFoldsIntoFollowingShuffle) {
  auto chain = CompilePigScript(SimplePigPipeline(0.25, 0.1));
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->stages.size(), 1u);
  // The 25% filter happens map-side of the group stage.
  EXPECT_NEAR(chain->stages[0].shuffle_ratio, 0.25, 1e-12);
  EXPECT_NEAR(chain->stages[0].output_ratio, 0.025, 1e-12);
}

TEST(PigCompilerTest, RejectsMalformedScripts) {
  PigScriptSpec spec;
  EXPECT_FALSE(CompilePigScript(spec).ok());
  spec.ops = {{PigOp::Kind::kFilter, 0.5}, {PigOp::Kind::kStore, 1.0}};
  EXPECT_FALSE(CompilePigScript(spec).ok());  // no LOAD
  spec.ops = {{PigOp::Kind::kLoad, 1.0}, {PigOp::Kind::kFilter, 0.5}};
  EXPECT_FALSE(CompilePigScript(spec).ok());  // no STORE
  spec.ops = {{PigOp::Kind::kLoad, 1.0},
              {PigOp::Kind::kFilter, 0.0},
              {PigOp::Kind::kStore, 1.0}};
  EXPECT_FALSE(CompilePigScript(spec).ok());  // bad ratio
}

// --- Chain arithmetic -----------------------------------------------------------

TEST(QueryPlanTest, ChainRatiosCompose) {
  JobChain chain;
  StageSpec a;
  a.output_ratio = 0.5;
  a.shuffle_ratio = 1.0;
  StageSpec b;
  b.output_ratio = 0.1;
  b.shuffle_ratio = 0.8;
  chain.stages = {a, b};
  EXPECT_NEAR(ChainOutputRatio(chain), 0.05, 1e-12);
  // Stage b sees 0.5x the input, so its shuffle contributes 0.5 * 0.8.
  EXPECT_NEAR(ChainShuffleRatio(chain), 1.0 + 0.4, 1e-12);
}

// --- Workflow tag parsing ---------------------------------------------------------

TEST(WorkflowTagTest, ParsesEmbeddedTags) {
  uint64_t id = 0;
  EXPECT_TRUE(ParseWorkflowTag("INSERT ... (Stage-2) W=417", &id));
  EXPECT_EQ(id, 417u);
  EXPECT_TRUE(ParseWorkflowTag("oozie:launcher:T=map-reduce:W=3", &id));
  EXPECT_EQ(id, 3u);
  EXPECT_FALSE(ParseWorkflowTag("plain job name", &id));
  EXPECT_FALSE(ParseWorkflowTag("W=", &id));
  EXPECT_FALSE(ParseWorkflowTag("", &id));
}

// --- Workflow generation -------------------------------------------------------------

TEST(WorkflowGeneratorTest, ProducesTaggedDependentJobs) {
  WorkflowGeneratorOptions options;
  options.workflows = 50;
  options.seed = 5;
  auto wt = GenerateWorkflowTrace(options);
  ASSERT_TRUE(wt.ok());
  EXPECT_EQ(wt->workflow_count, 50u);
  EXPECT_GE(wt->trace.size(), 50u);
  EXPECT_TRUE(wt->trace.Validate().ok());
  // Every job carries a parsable workflow tag.
  for (const auto& job : wt->trace.jobs()) {
    uint64_t id = 0;
    EXPECT_TRUE(ParseWorkflowTag(job.name, &id)) << job.name;
    EXPECT_EQ(wt->workflow_of.at(job.job_id), id);
  }
  // Dependencies reference earlier jobs of the same workflow.
  for (const auto& [child, parents] : wt->dependencies) {
    for (uint64_t parent : parents) {
      EXPECT_LT(parent, child);
      EXPECT_EQ(wt->workflow_of.at(parent), wt->workflow_of.at(child));
    }
  }
}

TEST(WorkflowGeneratorTest, Deterministic) {
  WorkflowGeneratorOptions options;
  options.workflows = 20;
  options.seed = 9;
  auto a = GenerateWorkflowTrace(options);
  auto b = GenerateWorkflowTrace(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->trace.size(), b->trace.size());
  for (size_t i = 0; i < a->trace.size(); ++i) {
    EXPECT_EQ(a->trace.jobs()[i], b->trace.jobs()[i]);
  }
}

TEST(WorkflowGeneratorTest, StagesChainThroughPaths) {
  WorkflowGeneratorOptions options;
  options.workflows = 30;
  options.oozie_fraction = 0.0;
  auto wt = GenerateWorkflowTrace(options);
  ASSERT_TRUE(wt.ok());
  // For every dependency edge, the child's input path is the parent's
  // output path (output->input chaining).
  std::unordered_map<uint64_t, const trace::JobRecord*> by_id;
  for (const auto& job : wt->trace.jobs()) by_id[job.job_id] = &job;
  size_t checked = 0;
  for (const auto& [child, parents] : wt->dependencies) {
    ASSERT_EQ(parents.size(), 1u);
    EXPECT_EQ(by_id.at(child)->input_path, by_id.at(parents[0])->output_path);
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(WorkflowGeneratorTest, RejectsBadOptions) {
  WorkflowGeneratorOptions options;
  options.workflows = 0;
  EXPECT_FALSE(GenerateWorkflowTrace(options).ok());
  options = {};
  options.span_seconds = -1;
  EXPECT_FALSE(GenerateWorkflowTrace(options).ok());
  options = {};
  options.oozie_fraction = 2.0;
  EXPECT_FALSE(GenerateWorkflowTrace(options).ok());
}

// --- Workflow reconstruction ------------------------------------------------------------

TEST(WorkflowReconstructionTest, RecoversGeneratedWorkflows) {
  WorkflowGeneratorOptions options;
  options.workflows = 80;
  options.seed = 13;
  auto wt = GenerateWorkflowTrace(options);
  ASSERT_TRUE(wt.ok());
  WorkflowReport report = ReconstructWorkflows(wt->trace);
  EXPECT_EQ(report.workflows.size(), 80u);
  EXPECT_EQ(report.tagged_jobs, wt->trace.size());
  EXPECT_EQ(report.untagged_jobs, 0u);
  EXPECT_GE(report.mean_stages, 1.0);
  EXPECT_GT(report.multi_stage_fraction, 0.2);
  for (const auto& summary : report.workflows) {
    EXPECT_GE(summary.stages, 1u);
    EXPECT_GE(summary.span_seconds, 0.0);
    EXPECT_GE(summary.critical_path_seconds, 0.0);
  }
}

TEST(WorkflowReconstructionTest, UntaggedJobsCounted) {
  trace::Trace t;
  trace::JobRecord job;
  job.job_id = 1;
  job.name = "ad_hoc_query";
  job.submit_time = 0;
  job.map_tasks = 1;
  t.AddJob(job);
  WorkflowReport report = ReconstructWorkflows(t);
  EXPECT_EQ(report.untagged_jobs, 1u);
  EXPECT_TRUE(report.workflows.empty());
}

// --- Workflow-aware replay -------------------------------------------------------------

TEST(WorkflowReplayTest, DependenciesDelayStages) {
  // Two jobs submitted simultaneously; the second depends on the first.
  trace::Trace t;
  trace::JobRecord a;
  a.job_id = 1;
  a.submit_time = 0;
  a.map_tasks = 1;
  a.map_task_seconds = 100;
  a.duration = 100;
  t.AddJob(a);
  trace::JobRecord b = a;
  b.job_id = 2;
  t.AddJob(b);

  sim::ReplayOptions options;
  options.cluster.nodes = 1;
  options.dependencies[2] = {1};
  auto result = sim::ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outcomes.size(), 2u);
  double latency_b = 0;
  for (const auto& o : result->outcomes) {
    if (o.job_id == 2) latency_b = o.latency;
  }
  // b waits for a (100 s) then runs (100 s).
  EXPECT_NEAR(latency_b, 200.0, 0.1);
  EXPECT_EQ(result->unfinished_jobs, 0u);
}

TEST(WorkflowReplayTest, RejectsUnknownJobIds) {
  trace::Trace t;
  trace::JobRecord a;
  a.job_id = 1;
  a.map_tasks = 1;
  a.map_task_seconds = 1;
  t.AddJob(a);
  sim::ReplayOptions options;
  options.dependencies[99] = {1};
  EXPECT_FALSE(sim::ReplayTrace(t, options).ok());
  options.dependencies.clear();
  options.dependencies[1] = {98};
  EXPECT_FALSE(sim::ReplayTrace(t, options).ok());
}

TEST(WorkflowReplayTest, CycleStallsButTerminates) {
  trace::Trace t;
  for (uint64_t id : {1u, 2u}) {
    trace::JobRecord job;
    job.job_id = id;
    job.map_tasks = 1;
    job.map_task_seconds = 10;
    t.AddJob(job);
  }
  sim::ReplayOptions options;
  options.dependencies[1] = {2};
  options.dependencies[2] = {1};
  auto result = sim::ReplayTrace(t, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->unfinished_jobs, 2u);
  EXPECT_TRUE(result->outcomes.empty());
}

TEST(WorkflowReplayTest, GeneratedWorkflowsCompleteEndToEnd) {
  WorkflowGeneratorOptions options;
  options.workflows = 60;
  options.seed = 17;
  auto wt = GenerateWorkflowTrace(options);
  ASSERT_TRUE(wt.ok());
  sim::ReplayOptions replay_options;
  replay_options.cluster.nodes = 50;
  replay_options.scheduler = "fair";
  replay_options.dependencies = wt->dependencies;
  auto result = sim::ReplayTrace(wt->trace, replay_options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->unfinished_jobs, 0u);
  EXPECT_EQ(result->outcomes.size(), wt->trace.size());
}

}  // namespace
}  // namespace swim::frameworks

#include <cmath>
#include <string>

#include "common/units.h"
#include "common/random.h"
#include "core/analysis/compute.h"
#include "core/analysis/data_access.h"
#include "core/analysis/temporal.h"
#include "core/analysis/workload_report.h"
#include "gtest/gtest.h"
#include "trace/trace.h"

namespace swim::core {
namespace {

trace::JobRecord MakeJob(uint64_t id, double submit, double input,
                         double shuffle, double output,
                         const std::string& name = "",
                         const std::string& in_path = "",
                         const std::string& out_path = "") {
  trace::JobRecord job;
  job.job_id = id;
  job.submit_time = submit;
  job.duration = 60;
  job.input_bytes = input;
  job.shuffle_bytes = shuffle;
  job.output_bytes = output;
  job.map_tasks = 1;
  job.map_task_seconds = input / 1e6 + 1;
  if (shuffle > 0) {
    job.reduce_tasks = 1;
    job.reduce_task_seconds = shuffle / 1e6 + 1;
  }
  job.name = name;
  job.input_path = in_path;
  job.output_path = out_path;
  return job;
}

// --- Data sizes (Figure 1) --------------------------------------------------

TEST(DataSizeTest, MediansMatchConstruction) {
  trace::Trace t;
  t.AddJob(MakeJob(1, 0, 100, 0, 10));
  t.AddJob(MakeJob(2, 10, 200, 50, 20));
  t.AddJob(MakeJob(3, 20, 300, 100, 30));
  DataSizeCdfs cdfs = ComputeDataSizeCdfs(t);
  EXPECT_DOUBLE_EQ(cdfs.input.median(), 200.0);
  EXPECT_DOUBLE_EQ(cdfs.shuffle.median(), 50.0);
  EXPECT_DOUBLE_EQ(cdfs.output.median(), 20.0);
  EXPECT_EQ(cdfs.input.size(), 3u);
}

// --- File popularity (Figure 2) ------------------------------------------------

TEST(PopularityTest, CountsAccessesPerPath) {
  trace::Trace t;
  for (int i = 0; i < 6; ++i) {
    t.AddJob(MakeJob(i + 1, i * 10, 100, 0, 10, "", "in/hot", "out/x"));
  }
  t.AddJob(MakeJob(7, 100, 100, 0, 10, "", "in/cold", "out/y"));
  FilePopularity pop = ComputeInputPopularity(t);
  EXPECT_EQ(pop.distinct_files, 2u);
  EXPECT_EQ(pop.total_accesses, 7u);
  EXPECT_DOUBLE_EQ(pop.frequencies[0], 6.0);
  EXPECT_DOUBLE_EQ(pop.frequencies[1], 1.0);
}

TEST(PopularityTest, EmptyWhenNoPaths) {
  trace::Trace t;
  t.AddJob(MakeJob(1, 0, 1, 0, 1));
  FilePopularity pop = ComputeInputPopularity(t);
  EXPECT_EQ(pop.distinct_files, 0u);
  EXPECT_EQ(ComputeOutputPopularity(t).distinct_files, 0u);
}

// --- Size skew (Figures 3/4) -----------------------------------------------------

TEST(SizeSkewTest, CurveSeparatesJobsFromBytes) {
  trace::Trace t;
  // 9 jobs on a tiny file, 1 job on a huge file.
  for (int i = 0; i < 9; ++i) {
    t.AddJob(MakeJob(i + 1, i, 1 * kMB, 0, 0, "", "in/small", ""));
  }
  t.AddJob(MakeJob(10, 100, 1 * kTB, 0, 0, "", "in/huge", ""));
  SizeSkewCurve curve = ComputeSizeSkew(t, /*use_output=*/false);
  ASSERT_FALSE(curve.points.empty());
  EXPECT_EQ(curve.jobs_with_paths, 10u);
  EXPECT_NEAR(curve.total_stored_bytes, 1 * kTB + 1 * kMB, 1e3);
  // At 1 GB: 90% of jobs but ~0% of stored bytes - the paper's skew.
  SizeSkewPoint at_gb;
  for (const auto& p : curve.points) {
    if (p.file_bytes <= 1 * kGB) at_gb = p;
  }
  EXPECT_NEAR(at_gb.fraction_of_jobs, 0.9, 0.01);
  EXPECT_LT(at_gb.fraction_of_stored_bytes, 0.01);
}

TEST(SizeSkewTest, EightyXRule) {
  trace::Trace t;
  // Hot file: 80 accesses, 1 GB. Cold files: 20 accesses, 10 GB each.
  for (int i = 0; i < 80; ++i) {
    t.AddJob(MakeJob(i + 1, i, 1 * kGB, 0, 0, "", "in/hot", ""));
  }
  for (int i = 0; i < 20; ++i) {
    t.AddJob(MakeJob(100 + i, 100 + i, 10 * kGB, 0, 0, "",
                     "in/cold" + std::to_string(i), ""));
  }
  double fraction =
      StoredBytesFractionForJobCoverage(t, 0.8, /*use_output=*/false);
  // 80% of accesses covered by the hot file = 1 GB of 201 GB stored.
  EXPECT_NEAR(fraction, 1.0 / 201.0, 0.001);
}

// --- Re-access (Figures 5/6) --------------------------------------------------------

TEST(ReaccessTest, IntervalsBetweenReads) {
  trace::Trace t;
  t.AddJob(MakeJob(1, 0, 1, 0, 1, "", "in/a", ""));
  t.AddJob(MakeJob(2, 100, 1, 0, 1, "", "in/a", ""));
  t.AddJob(MakeJob(3, 700, 1, 0, 1, "", "in/a", ""));
  ReaccessIntervals intervals = ComputeReaccessIntervals(t);
  ASSERT_EQ(intervals.input_input.size(), 2u);
  EXPECT_DOUBLE_EQ(intervals.input_input.min(), 100.0);
  EXPECT_DOUBLE_EQ(intervals.input_input.max(), 600.0);
}

TEST(ReaccessTest, OutputToInputChain) {
  trace::Trace t;
  // Job 1 writes out/x at t=60 (submit 0 + duration 60); job 2 reads it at
  // t=360.
  t.AddJob(MakeJob(1, 0, 1, 0, 100, "", "in/seed", "out/x"));
  t.AddJob(MakeJob(2, 360, 100, 0, 1, "", "out/x", ""));
  ReaccessIntervals intervals = ComputeReaccessIntervals(t);
  ASSERT_EQ(intervals.output_input.size(), 1u);
  EXPECT_DOUBLE_EQ(intervals.output_input.min(), 300.0);
}

TEST(ReaccessTest, FractionsCountProvenance) {
  trace::Trace t;
  t.AddJob(MakeJob(1, 0, 1, 0, 1, "", "in/a", "out/x"));   // fresh
  t.AddJob(MakeJob(2, 100, 1, 0, 1, "", "in/a", ""));      // input re-access
  t.AddJob(MakeJob(3, 200, 1, 0, 1, "", "out/x", ""));     // output re-access
  t.AddJob(MakeJob(4, 300, 1, 0, 1, "", "in/b", ""));      // fresh
  ReaccessFractions fractions = ComputeReaccessFractions(t);
  EXPECT_EQ(fractions.jobs_with_paths, 4u);
  EXPECT_DOUBLE_EQ(fractions.input_reaccess, 0.25);
  EXPECT_DOUBLE_EQ(fractions.output_reaccess, 0.25);
}

TEST(ReaccessTest, NoPathsMeansZero) {
  trace::Trace t;
  t.AddJob(MakeJob(1, 0, 1, 0, 1));
  ReaccessFractions fractions = ComputeReaccessFractions(t);
  EXPECT_EQ(fractions.jobs_with_paths, 0u);
  EXPECT_EQ(fractions.input_reaccess, 0.0);
}

// --- Temporal (Figures 7-9) ------------------------------------------------------

TEST(TemporalTest, SubmissionSeriesDimensions) {
  trace::Trace t;
  t.AddJob(MakeJob(1, 0, 1e6, 0, 0));
  t.AddJob(MakeJob(2, 3600 * 5, 1e6, 0, 0));
  SubmissionSeries series = ComputeSubmissionSeries(t);
  EXPECT_EQ(series.jobs_per_hour.size(), 6u);
  EXPECT_DOUBLE_EQ(series.jobs_per_hour[0], 1.0);
  EXPECT_DOUBLE_EQ(series.jobs_per_hour[5], 1.0);
  EXPECT_DOUBLE_EQ(series.jobs_per_hour[2], 0.0);
}

TEST(TemporalTest, WeekWindowClamps) {
  std::vector<double> series(300, 1.0);
  EXPECT_EQ(WeekWindow(series).size(), 168u);
  EXPECT_EQ(WeekWindow(series, 200).size(), 100u);
  EXPECT_TRUE(WeekWindow({}).empty());
}

TEST(TemporalTest, CorrelationsDetectCoupledDimensions) {
  trace::Trace t;
  Pcg32 rng(9);
  // Bytes and task-seconds proportional; job counts constant.
  for (int h = 0; h < 200; ++h) {
    double scale = 1.0 + 10.0 * rng.NextDouble();
    trace::JobRecord job = MakeJob(h + 1, h * 3600.0 + 10, scale * 1e9,
                                   scale * 1e8, scale * 1e7);
    job.map_task_seconds = scale * 1000;
    t.AddJob(job);
  }
  SeriesCorrelations corr = ComputeSeriesCorrelations(t);
  EXPECT_GT(corr.bytes_task_seconds, 0.95);
  EXPECT_EQ(corr.jobs_bytes, 0.0);  // jobs/hour is constant
}

TEST(TemporalTest, DiurnalStrengthHighForDailyPattern) {
  trace::Trace t;
  uint64_t id = 1;
  for (int d = 0; d < 7; ++d) {
    for (int h = 0; h < 24; ++h) {
      int jobs = (h >= 9 && h <= 17) ? 10 : 1;  // business hours
      for (int j = 0; j < jobs; ++j) {
        t.AddJob(MakeJob(id++, d * 86400.0 + h * 3600.0 + j, 1, 0, 1));
      }
    }
  }
  EXPECT_GT(DiurnalStrength(t), 0.5);
}

// --- Compute (Figure 10, Table 2) ------------------------------------------------

TEST(JobNamesTest, SharesByThreeWeightings) {
  trace::Trace t;
  // 3 small "ad" jobs, 1 huge "insert" job.
  for (int i = 0; i < 3; ++i) {
    t.AddJob(MakeJob(i + 1, i, 1e6, 0, 0, "ad_hoc_" + std::to_string(i)));
  }
  trace::JobRecord big =
      MakeJob(4, 100, 1e12, 0, 0, "INSERT OVERWRITE TABLE x");
  big.map_task_seconds = 1e6;
  t.AddJob(big);
  JobNameReport report = AnalyzeJobNames(t);
  ASSERT_GE(report.words.size(), 2u);
  EXPECT_EQ(report.words[0].word, "ad");
  EXPECT_DOUBLE_EQ(report.words[0].by_jobs, 0.75);
  EXPECT_LT(report.words[0].by_bytes, 0.01);
  // Framework attribution: insert -> Hive.
  EXPECT_NEAR(report.framework_by_jobs[static_cast<int>(
                  trace::Framework::kHive)],
              0.25, 1e-9);
  EXPECT_NEAR(report.framework_by_bytes[static_cast<int>(
                  trace::Framework::kHive)],
              1.0, 0.01);
}

TEST(JobNamesTest, UnnamedJobsExcluded) {
  trace::Trace t;
  t.AddJob(MakeJob(1, 0, 1, 0, 1));
  JobNameReport report = AnalyzeJobNames(t);
  EXPECT_EQ(report.named_jobs, 0u);
  EXPECT_TRUE(report.words.empty());
}

TEST(JobNamesTest, TopTwoFrameworkShare) {
  trace::Trace t;
  t.AddJob(MakeJob(1, 0, 1, 0, 1, "insert a"));
  t.AddJob(MakeJob(2, 1, 1, 0, 1, "PigLatin:x.pig"));
  t.AddJob(MakeJob(3, 2, 1, 0, 1, "custom_thing"));
  t.AddJob(MakeJob(4, 3, 1, 0, 1, "select b"));
  JobNameReport report = AnalyzeJobNames(t);
  // Hive (0.5) + Pig or Native (0.25) = 0.75.
  EXPECT_NEAR(report.TopTwoFrameworkJobShare(), 0.75, 1e-9);
}

TEST(ClassifyTest, SeparatesSmallAndLargeJobs) {
  trace::Trace t;
  Pcg32 rng(17);
  for (int i = 0; i < 400; ++i) {
    trace::JobRecord job =
        MakeJob(i + 1, i * 10.0, 1e5 * (1 + rng.NextDouble()), 0,
                1e4 * (1 + rng.NextDouble()));
    job.duration = 30;
    job.map_task_seconds = 20;
    t.AddJob(job);
  }
  for (int i = 0; i < 40; ++i) {
    trace::JobRecord job =
        MakeJob(500 + i, i * 100.0, 1e12 * (1 + rng.NextDouble()),
                1e11 * (1 + rng.NextDouble()), 1e10);
    job.duration = 3600;
    job.map_task_seconds = 1e6;
    job.reduce_task_seconds = 1e5;
    t.AddJob(job);
  }
  auto result = ClassifyJobs(t);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->k, 2);
  EXPECT_NEAR(result->largest_class_fraction, 400.0 / 440.0, 0.05);
  EXPECT_NEAR(result->fraction_under_10gb, 400.0 / 440.0, 1e-9);
  EXPECT_EQ(result->classes[0].label, "Small jobs");
}

TEST(ClassifyTest, EmptyTraceFails) {
  trace::Trace t;
  EXPECT_FALSE(ClassifyJobs(t).ok());
}

TEST(ClassifyTest, SingleJobGivesOneClass) {
  trace::Trace t;
  t.AddJob(MakeJob(1, 0, 1e6, 0, 1e5));
  auto result = ClassifyJobs(t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->k, 1);
  EXPECT_DOUBLE_EQ(result->largest_class_fraction, 1.0);
}

TEST(LabelTest, VocabularyMatchesPaper) {
  JobClass small;
  small.input_bytes = 1 * kMB;
  small.output_bytes = 100 * kKB;
  small.duration_seconds = 30;
  small.map_task_seconds = 20;
  EXPECT_EQ(LabelForCentroid(small), "Small jobs");

  JobClass load;
  load.input_bytes = 400 * kKB;
  load.output_bytes = 447 * kGB;
  load.duration_seconds = kHour;
  load.map_task_seconds = 66657;
  EXPECT_EQ(LabelForCentroid(load), "Load data");

  JobClass aggregate;
  aggregate.input_bytes = 4.7 * kTB;
  aggregate.shuffle_bytes = 374 * kMB;
  aggregate.output_bytes = 24 * kMB;
  aggregate.duration_seconds = 9 * kMinute;
  aggregate.map_task_seconds = 876786;
  aggregate.reduce_task_seconds = 705;
  EXPECT_NE(LabelForCentroid(aggregate).find("Aggregate"), std::string::npos);

  JobClass map_only;
  map_only.input_bytes = 1.2 * kTB;
  map_only.output_bytes = 27 * kGB;
  map_only.duration_seconds = 2.5 * kHour;
  map_only.map_task_seconds = 437615;
  EXPECT_NE(LabelForCentroid(map_only).find("Map only"), std::string::npos);

  JobClass expand;
  expand.input_bytes = 100 * kGB;
  expand.shuffle_bytes = 120 * kGB;
  expand.output_bytes = 600 * kGB;
  expand.duration_seconds = kHour;
  expand.map_task_seconds = 1e6;
  expand.reduce_task_seconds = 1e6;
  EXPECT_NE(LabelForCentroid(expand).find("Expand"), std::string::npos);
}

// --- Facade ----------------------------------------------------------------------

TEST(WorkloadReportTest, RunsFullPipeline) {
  trace::Trace t;
  t.mutable_metadata().name = "mini";
  for (int i = 0; i < 100; ++i) {
    t.AddJob(MakeJob(i + 1, i * 120.0, 1e6, 0, 1e5, "ad_" + std::to_string(i),
                     "in/a", "out/" + std::to_string(i)));
  }
  auto report = AnalyzeWorkload(t);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->summary.jobs, 100u);
  EXPECT_EQ(report->names.named_jobs, 100u);
  EXPECT_GE(report->classes.k, 1);
  std::string text = FormatReport(*report);
  EXPECT_NE(text.find("mini"), std::string::npos);
  EXPECT_NE(text.find("Small jobs"), std::string::npos);
}

TEST(WorkloadReportTest, EmptyTraceFails) {
  trace::Trace t;
  EXPECT_FALSE(AnalyzeWorkload(t).ok());
}

}  // namespace
}  // namespace swim::core

#include <set>
#include <string>

#include "common/units.h"
#include "gtest/gtest.h"
#include "common/string_util.h"
#include "trace/trace_io.h"
#include "workloads/name_generator.h"
#include "workloads/paper_workloads.h"
#include "workloads/trace_generator.h"
#include "workloads/workload_spec.h"

namespace swim::workloads {
namespace {

WorkloadSpec TinySpec() {
  WorkloadSpec spec;
  spec.metadata.name = "tiny";
  spec.total_jobs = 500;
  spec.span_seconds = 2 * kDay;
  JobTypeSpec small;
  small.label = "Small jobs";
  small.count_weight = 9;
  small.input_bytes = 1 * kMB;
  small.output_bytes = 100 * kKB;
  small.duration_seconds = 30;
  small.map_task_seconds = 20;
  JobTypeSpec big;
  big.label = "Aggregate";
  big.count_weight = 1;
  big.input_bytes = 1 * kTB;
  big.shuffle_bytes = 10 * kGB;
  big.output_bytes = 1 * kGB;
  big.duration_seconds = kHour;
  big.map_task_seconds = 100000;
  big.reduce_task_seconds = 20000;
  spec.job_types = {small, big};
  spec.default_name_words = {{"ad", 3}, {"insert", 1}};
  return spec;
}

// --- Spec validation ------------------------------------------------------

TEST(WorkloadSpecTest, TinySpecIsValid) {
  EXPECT_TRUE(ValidateSpec(TinySpec()).ok());
}

TEST(WorkloadSpecTest, RejectsMissingName) {
  WorkloadSpec spec = TinySpec();
  spec.metadata.name.clear();
  EXPECT_FALSE(ValidateSpec(spec).ok());
}

TEST(WorkloadSpecTest, RejectsZeroJobs) {
  WorkloadSpec spec = TinySpec();
  spec.total_jobs = 0;
  EXPECT_FALSE(ValidateSpec(spec).ok());
}

TEST(WorkloadSpecTest, RejectsEmptyMixture) {
  WorkloadSpec spec = TinySpec();
  spec.job_types.clear();
  EXPECT_FALSE(ValidateSpec(spec).ok());
}

TEST(WorkloadSpecTest, RejectsNegativeDimension) {
  WorkloadSpec spec = TinySpec();
  spec.job_types[0].input_bytes = -1;
  EXPECT_FALSE(ValidateSpec(spec).ok());
}

TEST(WorkloadSpecTest, RejectsZeroTotalWeight) {
  WorkloadSpec spec = TinySpec();
  for (auto& jt : spec.job_types) jt.count_weight = 0;
  EXPECT_FALSE(ValidateSpec(spec).ok());
}

TEST(WorkloadSpecTest, RejectsBadProbabilities) {
  WorkloadSpec spec = TinySpec();
  spec.files.input_reaccess_fraction = 0.8;
  spec.files.output_reaccess_fraction = 0.5;  // sums above 1
  EXPECT_FALSE(ValidateSpec(spec).ok());
  spec = TinySpec();
  spec.arrival.diurnal_strength = 1.5;
  EXPECT_FALSE(ValidateSpec(spec).ok());
  spec = TinySpec();
  spec.arrival.burst_autocorrelation = 1.0;
  EXPECT_FALSE(ValidateSpec(spec).ok());
}

// --- Name generation --------------------------------------------------------

TEST(NameGeneratorTest, DecorationPreservesFirstWord) {
  Pcg32 rng(3);
  for (const char* word : {"insert", "select", "piglatin", "oozie", "ad"}) {
    std::string name = DecorateJobName(word, 417, rng);
    EXPECT_EQ(FirstWordOfJobName(name), word) << name;
  }
}

// --- Generator ---------------------------------------------------------------

TEST(TraceGeneratorTest, ProducesRequestedJobCount) {
  auto trace = GenerateTrace(TinySpec());
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->size(), 500u);
  EXPECT_TRUE(trace->Validate().ok());
}

TEST(TraceGeneratorTest, JobCountOverride) {
  GeneratorOptions options;
  options.job_count_override = 77;
  auto trace = GenerateTrace(TinySpec(), options);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->size(), 77u);
}

TEST(TraceGeneratorTest, DeterministicForSeed) {
  GeneratorOptions options;
  options.seed = 1234;
  auto a = GenerateTrace(TinySpec(), options);
  auto b = GenerateTrace(TinySpec(), options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(trace::TraceToCsv(*a), trace::TraceToCsv(*b));
}

TEST(TraceGeneratorTest, DifferentSeedsDiffer) {
  GeneratorOptions a_options, b_options;
  a_options.seed = 1;
  b_options.seed = 2;
  auto a = GenerateTrace(TinySpec(), a_options);
  auto b = GenerateTrace(TinySpec(), b_options);
  EXPECT_NE(trace::TraceToCsv(*a), trace::TraceToCsv(*b));
}

TEST(TraceGeneratorTest, SubmitTimesWithinSpan) {
  auto trace = GenerateTrace(TinySpec());
  ASSERT_TRUE(trace.ok());
  for (const auto& job : trace->jobs()) {
    EXPECT_GE(job.submit_time, 0.0);
    EXPECT_LE(job.submit_time, 2 * kDay);
  }
}

TEST(TraceGeneratorTest, MixtureSharesRoughlyRespected) {
  GeneratorOptions options;
  options.job_count_override = 5000;
  auto trace = GenerateTrace(TinySpec(), options);
  ASSERT_TRUE(trace.ok());
  size_t big = 0;
  for (const auto& job : trace->jobs()) {
    if (job.TotalBytes() > 10 * kGB) ++big;
  }
  // Big class weight is 10%; lognormal spread blurs the boundary.
  EXPECT_GT(big, 250u);
  EXPECT_LT(big, 900u);
}

TEST(TraceGeneratorTest, ColumnsRespectAvailability) {
  WorkloadSpec spec = TinySpec();
  spec.columns.names = false;
  spec.columns.input_paths = false;
  spec.columns.output_paths = false;
  auto trace = GenerateTrace(spec);
  ASSERT_TRUE(trace.ok());
  for (const auto& job : trace->jobs()) {
    EXPECT_TRUE(job.name.empty());
    EXPECT_TRUE(job.input_path.empty());
    EXPECT_TRUE(job.output_path.empty());
  }
}

TEST(TraceGeneratorTest, MapOnlyClassesHaveNoReduces) {
  WorkloadSpec spec = TinySpec();
  spec.job_types[1].shuffle_bytes = 0;
  spec.job_types[1].reduce_task_seconds = 0;
  auto trace = GenerateTrace(spec);
  ASSERT_TRUE(trace.ok());
  for (const auto& job : trace->jobs()) {
    EXPECT_EQ(job.shuffle_bytes, 0.0);
    EXPECT_EQ(job.reduce_tasks, 0);
    EXPECT_EQ(job.reduce_task_seconds, 0.0);
  }
}

TEST(TraceGeneratorTest, RejectsInvalidSpec) {
  WorkloadSpec spec = TinySpec();
  spec.total_jobs = 0;
  EXPECT_FALSE(GenerateTrace(spec).ok());
}

// --- Paper workload catalog ----------------------------------------------------

TEST(PaperWorkloadsTest, AllSevenPresentAndValid) {
  auto specs = AllPaperWorkloads();
  ASSERT_EQ(specs.size(), 7u);
  std::set<std::string> names;
  for (const auto& spec : specs) {
    EXPECT_TRUE(ValidateSpec(spec).ok()) << spec.metadata.name;
    names.insert(spec.metadata.name);
  }
  EXPECT_EQ(names.size(), 7u);
  EXPECT_TRUE(names.count("FB-2009"));
  EXPECT_TRUE(names.count("CC-e"));
}

TEST(PaperWorkloadsTest, LookupByName) {
  auto spec = PaperWorkloadByName("FB-2010");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->metadata.year, 2010);
  EXPECT_FALSE(spec->columns.names);  // FB-2010 trace has no job names
  EXPECT_FALSE(PaperWorkloadByName("FB-2011").ok());
}

TEST(PaperWorkloadsTest, Table1JobTotalsTranscribed) {
  // Job totals from Table 1.
  EXPECT_EQ(PaperWorkloadByName("CC-a")->total_jobs, 5759u);
  EXPECT_EQ(PaperWorkloadByName("CC-b")->total_jobs, 22974u);
  EXPECT_EQ(PaperWorkloadByName("CC-c")->total_jobs, 21030u);
  EXPECT_EQ(PaperWorkloadByName("CC-d")->total_jobs, 13283u);
  EXPECT_EQ(PaperWorkloadByName("CC-e")->total_jobs, 10790u);
  EXPECT_EQ(PaperWorkloadByName("FB-2009")->total_jobs, 1129193u);
  EXPECT_EQ(PaperWorkloadByName("FB-2010")->total_jobs, 1169184u);
}

TEST(PaperWorkloadsTest, Table2WeightsSumToTable1Totals) {
  // The Table 2 cluster sizes partition each workload's job count.
  for (const auto& spec : AllPaperWorkloads()) {
    double weight_sum = 0;
    for (const auto& jt : spec.job_types) weight_sum += jt.count_weight;
    EXPECT_NEAR(weight_sum, static_cast<double>(spec.total_jobs), 0.5)
        << spec.metadata.name;
  }
}

TEST(PaperWorkloadsTest, SmallJobsDominateEverySpec) {
  for (const auto& spec : AllPaperWorkloads()) {
    double weight_sum = 0;
    double largest = 0;
    for (const auto& jt : spec.job_types) {
      weight_sum += jt.count_weight;
      largest = std::max(largest, jt.count_weight);
    }
    EXPECT_GT(largest / weight_sum, 0.9) << spec.metadata.name;
  }
}

TEST(PaperWorkloadsTest, FacebookTracesLackPaths) {
  EXPECT_FALSE(PaperWorkloadByName("FB-2009")->columns.input_paths);
  EXPECT_FALSE(PaperWorkloadByName("CC-a")->columns.input_paths);
  EXPECT_TRUE(PaperWorkloadByName("FB-2010")->columns.input_paths);
  EXPECT_FALSE(PaperWorkloadByName("FB-2010")->columns.output_paths);
}

/// Generating a scaled-down instance of every paper workload must succeed
/// and respect structural invariants.
class PaperWorkloadGenerationTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(PaperWorkloadGenerationTest, ScaledGenerationIsValid) {
  auto spec = PaperWorkloadByName(GetParam());
  ASSERT_TRUE(spec.ok());
  GeneratorOptions options;
  options.job_count_override = 3000;
  options.seed = 7;
  auto trace = GenerateTrace(*spec, options);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->size(), 3000u);
  EXPECT_TRUE(trace->Validate().ok());
  EXPECT_EQ(trace->metadata().name, GetParam());
  // Column availability must match the spec.
  bool any_name = false, any_input = false, any_output = false;
  for (const auto& job : trace->jobs()) {
    any_name |= !job.name.empty();
    any_input |= !job.input_path.empty();
    any_output |= !job.output_path.empty();
  }
  EXPECT_EQ(any_name, spec->columns.names);
  EXPECT_EQ(any_input, spec->columns.input_paths);
  EXPECT_EQ(any_output, spec->columns.output_paths);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PaperWorkloadGenerationTest,
                         ::testing::ValuesIn(PaperWorkloadNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace swim::workloads

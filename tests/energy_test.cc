#include "gtest/gtest.h"
#include "sim/energy.h"
#include "sim/replay.h"
#include "trace/trace.h"

namespace swim::sim {
namespace {

ReplayResult FakeReplay(std::vector<double> hourly_occupancy) {
  ReplayResult result;
  result.hourly_occupancy = std::move(hourly_occupancy);
  return result;
}

ClusterConfig SmallCluster() {
  ClusterConfig cluster;
  cluster.nodes = 10;
  cluster.map_slots_per_node = 8;
  cluster.reduce_slots_per_node = 2;  // 100 slots total
  return cluster;
}

TEST(EnergyTest, IdleClusterSavesAlmostEverything) {
  auto report = EstimateEnergy(FakeReplay({0.0, 0.0, 0.0}), SmallCluster());
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->mean_occupancy, 0.0);
  EXPECT_DOUBLE_EQ(report->power_proportional_kwh, 0.0);
  EXPECT_GT(report->always_on_kwh, 0.0);
  EXPECT_DOUBLE_EQ(report->savings_fraction, 1.0);
}

TEST(EnergyTest, FullLoadSavesNothing) {
  // All 100 slots busy every hour: proportional == always-on.
  auto report = EstimateEnergy(FakeReplay({100.0, 100.0}), SmallCluster());
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->mean_occupancy, 1.0);
  EXPECT_NEAR(report->savings_fraction, 0.0, 1e-9);
}

TEST(EnergyTest, HalfLoadArithmetic) {
  // 50 of 100 slots busy for one hour. Always-on: 10 nodes at
  // (150 + 150*0.5) = 225 W -> 2.25 kWh. Proportional: ceil(50/10)=5
  // nodes at 300 W -> 1.5 kWh.
  auto report = EstimateEnergy(FakeReplay({50.0}), SmallCluster());
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->always_on_kwh, 2.25, 1e-9);
  EXPECT_NEAR(report->power_proportional_kwh, 1.5, 1e-9);
  EXPECT_NEAR(report->savings_fraction, 1.0 - 1.5 / 2.25, 1e-9);
}

TEST(EnergyTest, BurstierLoadSavesMoreAtEqualWork) {
  // Same total slot-hours (60), spread flat vs bursty.
  auto flat = EstimateEnergy(FakeReplay({20, 20, 20}), SmallCluster());
  auto bursty = EstimateEnergy(FakeReplay({60, 0, 0}), SmallCluster());
  ASSERT_TRUE(flat.ok());
  ASSERT_TRUE(bursty.ok());
  EXPECT_GT(bursty->savings_fraction, flat->savings_fraction - 1e-9);
}

TEST(EnergyTest, RejectsBadInputs) {
  EXPECT_FALSE(EstimateEnergy(FakeReplay({}), SmallCluster()).ok());
  EnergyModel model;
  model.busy_watts = 10;
  model.idle_watts = 50;  // busy < idle
  EXPECT_FALSE(
      EstimateEnergy(FakeReplay({1.0}), SmallCluster(), model).ok());
  ClusterConfig empty;
  empty.nodes = 0;
  EXPECT_FALSE(EstimateEnergy(FakeReplay({1.0}), empty).ok());
}

TEST(EnergyTest, OccupancyAboveCapacityClamps) {
  // Defensive: occupancy reported above capacity clamps utilization at 1.
  auto report = EstimateEnergy(FakeReplay({500.0}), SmallCluster());
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->mean_occupancy, 1.0);
}

}  // namespace
}  // namespace swim::sim

#include "common/flat_hash.h"

#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/interner.h"
#include "common/random.h"
#include "trace/trace.h"
#include "trace/trace_io.h"

namespace swim {
namespace {

TEST(FlatHashMapTest, BasicInsertFindErase) {
  FlatHashMap<std::string, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);

  map["a"] = 1;
  map["b"] = 2;
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.at("a"), 1);
  EXPECT_EQ(map.at("b"), 2);
  EXPECT_TRUE(map.contains("a"));
  EXPECT_FALSE(map.contains("c"));
  EXPECT_EQ(map.find("c"), map.end());

  map["a"] = 10;  // overwrite, not duplicate
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.at("a"), 10);

  EXPECT_EQ(map.erase("a"), 1u);
  EXPECT_EQ(map.erase("a"), 0u);
  EXPECT_FALSE(map.contains("a"));
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, HeterogeneousStringViewLookup) {
  FlatHashMap<std::string, int> map;
  map["some/long/path"] = 7;
  std::string_view probe = "some/long/path";
  auto it = map.find(probe);  // no std::string temporary
  ASSERT_NE(it, map.end());
  EXPECT_EQ(it->second, 7);
  EXPECT_TRUE(map.contains(probe));
  EXPECT_EQ(map[probe], 7);  // het operator[] finds the existing entry
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, TryEmplaceOnlyConstructsOnInsert) {
  FlatHashMap<std::string, std::vector<int>> map;
  auto [it1, inserted1] = map.TryEmplace("k", 3, 42);
  EXPECT_TRUE(inserted1);
  EXPECT_EQ(it1->second, (std::vector<int>{42, 42, 42}));
  auto [it2, inserted2] = map.TryEmplace("k", 5, 9);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(it2->second, (std::vector<int>{42, 42, 42}));
}

TEST(FlatHashMapTest, IterationVisitsEachEntryOnce) {
  FlatHashMap<int, int> map;
  for (int i = 0; i < 100; ++i) map[i] = i * i;
  std::vector<bool> seen(100, false);
  size_t visited = 0;
  for (const auto& [key, value] : map) {
    EXPECT_EQ(value, key * key);
    EXPECT_FALSE(seen[key]);
    seen[key] = true;
    ++visited;
  }
  EXPECT_EQ(visited, 100u);
}

TEST(FlatHashMapTest, CopyAndMoveSemantics) {
  FlatHashMap<std::string, int> map;
  for (int i = 0; i < 50; ++i) map["k" + std::to_string(i)] = i;

  FlatHashMap<std::string, int> copy = map;
  EXPECT_EQ(copy.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(copy.at("k" + std::to_string(i)), i);
  copy["extra"] = -1;
  EXPECT_FALSE(map.contains("extra"));  // deep copy

  FlatHashMap<std::string, int> moved = std::move(copy);
  EXPECT_EQ(moved.size(), 51u);
  EXPECT_EQ(moved.at("extra"), -1);

  FlatHashMap<std::string, int> assigned;
  assigned["old"] = 0;
  assigned = map;
  EXPECT_EQ(assigned.size(), 50u);
  EXPECT_FALSE(assigned.contains("old"));
}

TEST(FlatHashMapTest, ReserveKeepsEntriesAndAvoidsGrowth) {
  FlatHashMap<int, int> map;
  map[1] = 10;
  map.reserve(10000);
  EXPECT_EQ(map.at(1), 10);
  for (int i = 0; i < 10000; ++i) map[i] = i;
  EXPECT_EQ(map.size(), 10000u);
  for (int i : {0, 1, 4999, 9999}) EXPECT_EQ(map.at(i), i);
}

TEST(FlatHashSetTest, BasicOperations) {
  FlatHashSet<std::string> set;
  EXPECT_TRUE(set.insert("x").second);
  EXPECT_FALSE(set.insert("x").second);
  EXPECT_TRUE(set.contains("x"));
  EXPECT_TRUE(set.contains(std::string_view("x")));
  EXPECT_FALSE(set.contains("y"));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.erase("x"), 1u);
  EXPECT_TRUE(set.empty());
}

// Property test: a long random mixed insert/erase/find workload must
// agree with std::unordered_map at every step, across rehash boundaries
// and with heavy tombstone churn.
TEST(FlatHashMapTest, MatchesUnorderedMapOracle) {
  FlatHashMap<uint64_t, uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> oracle;
  Pcg32 rng(1234, /*stream=*/77);

  // Small key domain forces frequent re-insertion into tombstoned slots.
  constexpr uint64_t kKeyDomain = 512;
  for (int step = 0; step < 60000; ++step) {
    uint64_t key = rng.NextBounded(kKeyDomain);
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {  // insert/overwrite
        uint64_t value = rng();
        map[key] = value;
        oracle[key] = value;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(map.erase(key), oracle.erase(key));
        break;
      }
      default: {  // find
        auto it = map.find(key);
        auto oracle_it = oracle.find(key);
        ASSERT_EQ(it == map.end(), oracle_it == oracle.end());
        if (it != map.end()) {
          EXPECT_EQ(it->second, oracle_it->second);
        }
      }
    }
    ASSERT_EQ(map.size(), oracle.size());
  }
  // Full sweep: every oracle entry present with the right value, and
  // iteration covers exactly the oracle's keys.
  size_t visited = 0;
  for (const auto& [key, value] : map) {
    auto oracle_it = oracle.find(key);
    ASSERT_NE(oracle_it, oracle.end());
    EXPECT_EQ(value, oracle_it->second);
    ++visited;
  }
  EXPECT_EQ(visited, oracle.size());
}

// Same oracle test with string keys (exercises HashBytes and the
// heterogeneous equality path).
TEST(FlatHashMapTest, MatchesUnorderedMapOracleStringKeys) {
  FlatHashMap<std::string, int> map;
  std::unordered_map<std::string, int> oracle;
  Pcg32 rng(99, /*stream=*/3);
  for (int step = 0; step < 20000; ++step) {
    std::string key = "path/" + std::to_string(rng.NextBounded(300));
    if (rng.NextBernoulli(0.3)) {
      EXPECT_EQ(map.erase(key), oracle.erase(key));
    } else {
      int value = static_cast<int>(rng.NextBounded(1 << 20));
      map[key] = value;
      oracle[key] = value;
    }
    ASSERT_EQ(map.size(), oracle.size());
  }
  for (const auto& [key, value] : oracle) {
    auto it = map.find(std::string_view(key));
    ASSERT_NE(it, map.end()) << key;
    EXPECT_EQ(it->second, value);
  }
}

TEST(FlatHashMapTest, EraseByIteratorDuringScan) {
  FlatHashMap<int, int> map;
  for (int i = 0; i < 64; ++i) map[i] = i;
  // Erase the even keys via iterators.
  for (auto it = map.begin(); it != map.end();) {
    if (it->first % 2 == 0) {
      it = map.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(map.size(), 32u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(map.contains(i), i % 2 == 1);
}

// Regression for the tombstone-accounting latent bug: growth must trigger
// on (size + deleted), so an erase-heavy workload whose live size stays
// flat rehashes in place (purging tombstones) instead of letting deleted
// slots silently consume the table. Before the fix, this loop drove
// growth_left_ negative (wrapping, since it is unsigned) and probe chains
// degraded without bound.
TEST(FlatHashMapTest, TombstoneChurnStaysBounded) {
  FlatHashMap<uint64_t, uint64_t> map;
  map.reserve(256);
  const size_t capacity_after_reserve = map.capacity();
  Pcg32 rng(2012, /*stream=*/11);
  // 64 live keys, then ~200k insert/erase cycles of transient keys: far
  // more erases than any capacity's worth of slots.
  for (uint64_t k = 0; k < 64; ++k) map[k] = k;
  for (uint64_t cycle = 0; cycle < 200000; ++cycle) {
    uint64_t key = 1000 + rng.NextBounded(128);
    map[key] = cycle;
    EXPECT_EQ(map.erase(key), 1u);
    // The load-factor invariant must hold at every step: live entries plus
    // tombstones never exceed the 7/8 growth capacity.
    ASSERT_LE(map.size() + map.tombstones(), map.capacity() - map.capacity() / 8);
  }
  EXPECT_EQ(map.size(), 64u);
  // Churn with a flat live size must not have ballooned the table: the
  // in-place rehash purges tombstones instead of doubling.
  EXPECT_LE(map.capacity(), capacity_after_reserve * 2);
  for (uint64_t k = 0; k < 64; ++k) EXPECT_EQ(map.at(k), k);
}

// The SIMD group policies must be drop-in equivalent to the portable one:
// identical op results over a long random workload, whatever ISA this host
// compiled to (on SSE2/NEON hosts this pits GroupPortable against the
// vector path; on others it degenerates to self-comparison, still useful
// as an oracle run).
TEST(FlatHashMapTest, PortableGroupMatchesDefaultGroup) {
  FlatHashMap<uint64_t, uint64_t> simd;  // default Group for this build
  FlatHashMap<uint64_t, uint64_t, FlatHash, FlatEq,
              flat_internal::GroupPortable>
      portable;
  Pcg32 rng(777, /*stream=*/13);
  for (int step = 0; step < 100000; ++step) {
    uint64_t key = rng.NextBounded(2048);
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {
        uint64_t value = rng();
        simd[key] = value;
        portable[key] = value;
        break;
      }
      case 2:
        ASSERT_EQ(simd.erase(key), portable.erase(key));
        break;
      default: {
        auto simd_it = simd.find(key);
        auto portable_it = portable.find(key);
        ASSERT_EQ(simd_it == simd.end(), portable_it == portable.end());
        if (simd_it != simd.end()) {
          ASSERT_EQ(simd_it->second, portable_it->second);
        }
      }
    }
    ASSERT_EQ(simd.size(), portable.size());
  }
  for (const auto& [key, value] : portable) {
    auto it = simd.find(key);
    ASSERT_NE(it, simd.end());
    EXPECT_EQ(it->second, value);
  }
}

TEST(StringInternerTest, DenseFirstAppearanceIds) {
  StringInterner interner;
  EXPECT_EQ(interner.Intern("alpha"), 0u);
  EXPECT_EQ(interner.Intern("beta"), 1u);
  EXPECT_EQ(interner.Intern("alpha"), 0u);  // stable on re-intern
  EXPECT_EQ(interner.Intern(""), 2u);       // empty string is a valid entry
  EXPECT_EQ(interner.size(), 3u);
  EXPECT_EQ(interner.NameOf(0), "alpha");
  EXPECT_EQ(interner.NameOf(1), "beta");
  EXPECT_EQ(interner.NameOf(2), "");
  EXPECT_EQ(interner.Find("beta"), 1u);
  EXPECT_EQ(interner.Find("gamma"), kNoStringId);
}

TEST(StringInternerTest, ViewsStableAcrossArenaGrowth) {
  StringInterner interner;
  std::string_view first = interner.NameOf(interner.Intern("needle"));
  // Push enough bytes to force many new arena blocks.
  std::string big(50000, 'x');
  for (int i = 0; i < 40; ++i) {
    interner.Intern(big + std::to_string(i));
  }
  EXPECT_EQ(first, "needle");
  EXPECT_EQ(interner.Find("needle"), 0u);
}

TEST(StringInternerTest, CopyPreservesIds) {
  StringInterner interner;
  interner.Intern("a");
  interner.Intern("b");
  StringInterner copy = interner;
  interner.Intern("c");
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.Find("a"), 0u);
  EXPECT_EQ(copy.Find("b"), 1u);
  EXPECT_EQ(copy.Find("c"), kNoStringId);
  EXPECT_EQ(copy.Intern("c"), 2u);  // copy continues its own id space
}

trace::Trace MakeIndexedTrace() {
  trace::Trace trace;
  trace.mutable_metadata().name = "interner-test";
  Pcg32 rng(42, /*stream=*/5);
  for (uint64_t i = 0; i < 500; ++i) {
    trace::JobRecord job;
    job.job_id = i + 1;
    job.submit_time = static_cast<double>(rng.NextBounded(100000));
    job.name = "Job" + std::to_string(rng.NextBounded(40));
    job.input_bytes = 1e6;
    // Some jobs lack paths, exercising the kNoStringId branches; outputs
    // re-use the input namespace so path ids are shared.
    if (rng.NextBernoulli(0.8)) {
      job.input_path = "data/in" + std::to_string(rng.NextBounded(60));
    }
    if (rng.NextBernoulli(0.7)) {
      job.output_path = rng.NextBernoulli(0.3)
                            ? "data/in" + std::to_string(rng.NextBounded(60))
                            : "data/out" + std::to_string(rng.NextBounded(60));
    }
    trace.AddJob(std::move(job));
  }
  return trace;
}

TEST(TraceIndexTest, IdColumnsMatchJobStrings) {
  trace::Trace trace = MakeIndexedTrace();
  const auto& jobs = trace.jobs();  // EnsureSorted via accessor chain below
  const auto& input_ids = trace.input_path_ids();
  const auto& output_ids = trace.output_path_ids();
  const auto& name_ids = trace.name_ids();
  ASSERT_EQ(input_ids.size(), jobs.size());
  ASSERT_EQ(output_ids.size(), jobs.size());
  ASSERT_EQ(name_ids.size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].input_path.empty()) {
      EXPECT_EQ(input_ids[i], kNoStringId);
    } else {
      EXPECT_EQ(trace.path_interner().NameOf(input_ids[i]),
                jobs[i].input_path);
    }
    if (jobs[i].output_path.empty()) {
      EXPECT_EQ(output_ids[i], kNoStringId);
    } else {
      EXPECT_EQ(trace.path_interner().NameOf(output_ids[i]),
                jobs[i].output_path);
    }
    EXPECT_EQ(trace.name_interner().NameOf(name_ids[i]), jobs[i].name);
  }
}

TEST(TraceIndexTest, IndexInvalidatedByMutation) {
  trace::Trace trace = MakeIndexedTrace();
  size_t paths_before = trace.path_interner().size();
  trace::JobRecord job;
  job.job_id = 9999;
  job.submit_time = 1e9;  // sorts last; earlier ids unchanged
  job.input_path = "data/brand-new-path";
  trace.AddJob(std::move(job));
  EXPECT_EQ(trace.path_interner().size(), paths_before + 1);
  EXPECT_NE(trace.path_interner().Find("data/brand-new-path"), kNoStringId);
}

// Interner determinism across CSV-parse thread counts: ids are assigned
// from the submit-sorted job stream, so the id columns must be identical
// whether the CSV was parsed serially or with 8 shard threads.
TEST(TraceIndexTest, DeterministicAcrossCsvParseThreads) {
  trace::Trace trace = MakeIndexedTrace();
  std::string csv = trace::TraceToCsv(trace);

  auto serial = trace::TraceFromCsv(csv, /*threads=*/1);
  ASSERT_TRUE(serial.ok()) << serial.status().message();
  auto parallel = trace::TraceFromCsv(csv, /*threads=*/8);
  ASSERT_TRUE(parallel.ok()) << parallel.status().message();

  EXPECT_EQ(serial->input_path_ids(), parallel->input_path_ids());
  EXPECT_EQ(serial->output_path_ids(), parallel->output_path_ids());
  EXPECT_EQ(serial->name_ids(), parallel->name_ids());
  ASSERT_EQ(serial->path_interner().size(), parallel->path_interner().size());
  for (uint32_t id = 0; id < serial->path_interner().size(); ++id) {
    EXPECT_EQ(serial->path_interner().NameOf(id),
              parallel->path_interner().NameOf(id));
  }
}

// Id stability round-trip: writing a trace to CSV and reading it back
// must reproduce the exact same id columns (the job stream order and
// therefore first-appearance order is preserved by the CSV format).
TEST(TraceIndexTest, IdsStableThroughCsvRoundTrip) {
  trace::Trace trace = MakeIndexedTrace();
  const auto input_ids = trace.input_path_ids();  // copy before round-trip
  const auto output_ids = trace.output_path_ids();
  const auto name_ids = trace.name_ids();

  auto round_tripped = trace::TraceFromCsv(trace::TraceToCsv(trace));
  ASSERT_TRUE(round_tripped.ok()) << round_tripped.status().message();
  EXPECT_EQ(round_tripped->input_path_ids(), input_ids);
  EXPECT_EQ(round_tripped->output_path_ids(), output_ids);
  EXPECT_EQ(round_tripped->name_ids(), name_ids);
}

}  // namespace
}  // namespace swim

#include <vector>

#include "core/analysis/diversity.h"
#include "gtest/gtest.h"
#include "workloads/paper_workloads.h"
#include "workloads/trace_generator.h"

namespace swim::core {
namespace {

WorkloadReport ReportFor(const char* name, size_t jobs) {
  auto spec = workloads::PaperWorkloadByName(name);
  workloads::GeneratorOptions options;
  options.job_count_override = jobs;
  auto trace = workloads::GenerateTrace(*spec, options);
  SWIM_CHECK_OK(trace.status());
  auto report = AnalyzeWorkload(*trace);
  SWIM_CHECK_OK(report.status());
  return *std::move(report);
}

TEST(DiversityTest, RequiresTwoWorkloads) {
  EXPECT_FALSE(CompareWorkloads({}).ok());
  std::vector<WorkloadReport> one;
  one.push_back(ReportFor("CC-b", 500));
  EXPECT_FALSE(CompareWorkloads(one).ok());
}

TEST(DiversityTest, CapturesTheStableAndDiverseMetrics) {
  std::vector<WorkloadReport> reports;
  for (const char* name : {"CC-b", "CC-c", "CC-e"}) {
    reports.push_back(ReportFor(name, 4000));
  }
  auto comparison = CompareWorkloads(reports);
  ASSERT_TRUE(comparison.ok());
  EXPECT_EQ(comparison->workload_names.size(), 3u);

  const DiversityMetric* zipf = nullptr;
  const DiversityMetric* input = nullptr;
  for (const auto& metric : comparison->metrics) {
    if (metric.name == "Zipf popularity slope") zipf = &metric;
    if (metric.name == "median input bytes") input = &metric;
  }
  ASSERT_NE(zipf, nullptr);
  ASSERT_NE(input, nullptr);
  // The paper's contrast: Zipf slope is the stable feature, data sizes
  // span orders of magnitude.
  EXPECT_LT(zipf->cv, 0.3);
  EXPECT_GT(input->spread_ratio, 100.0);
  EXPECT_GT(input->cv, zipf->cv);
}

TEST(DiversityTest, RankingIsByCv) {
  std::vector<WorkloadReport> reports;
  reports.push_back(ReportFor("CC-b", 1500));
  reports.push_back(ReportFor("CC-e", 1500));
  auto comparison = CompareWorkloads(reports);
  ASSERT_TRUE(comparison.ok());
  auto ranked = comparison->RankedByDiversity();
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1]->cv, ranked[i]->cv);
  }
}

TEST(DiversityTest, FormatListsMetrics) {
  std::vector<WorkloadReport> reports;
  reports.push_back(ReportFor("CC-b", 1000));
  reports.push_back(ReportFor("CC-c", 1000));
  auto comparison = CompareWorkloads(reports);
  ASSERT_TRUE(comparison.ok());
  std::string text = FormatDiversity(*comparison);
  EXPECT_NE(text.find("Zipf popularity slope"), std::string::npos);
  EXPECT_NE(text.find("median input bytes"), std::string::npos);
  EXPECT_NE(text.find("CV"), std::string::npos);
}

}  // namespace
}  // namespace swim::core

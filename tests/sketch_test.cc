// Tests for the streaming sketch layer: GK quantiles against the
// SortedStats oracle, P2 convergence, Space-Saving against exact counts,
// sliding-window exactness, and the online Zipf fit against the batch fit.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "stats/descriptive.h"
#include "stats/sketch/gk_quantile.h"
#include "stats/sketch/p2_quantile.h"
#include "stats/sketch/sliding_window.h"
#include "stats/sketch/space_saving.h"
#include "stats/sketch/zipf_online.h"
#include "stats/zipf.h"

namespace swim::stats {
namespace {

// --- GK quantile sketch ---------------------------------------------------

/// Asserts the GK answer for `p` sits within `epsilon * n` ranks of the
/// target rank in the exact sorted sample — the sketch's advertised
/// guarantee, checked against the oracle the analysis pipeline trusts.
void ExpectWithinRankEpsilon(const GkQuantileSketch& gk,
                             const std::vector<double>& sorted, double p,
                             double epsilon) {
  const double n = static_cast<double>(sorted.size());
  const double answer = gk.Quantile(p);
  // Rank range occupied by `answer` in the sorted sample (1-based).
  const auto lo_it = std::lower_bound(sorted.begin(), sorted.end(), answer);
  const auto hi_it = std::upper_bound(sorted.begin(), sorted.end(), answer);
  const double rank_lo = static_cast<double>(lo_it - sorted.begin()) + 1.0;
  const double rank_hi = static_cast<double>(hi_it - sorted.begin());
  const double target = 1.0 + p * (n - 1.0);
  const double margin = epsilon * n + 1.0;
  EXPECT_LE(rank_lo, target + margin)
      << "p=" << p << " answer=" << answer << " n=" << n;
  EXPECT_GE(rank_hi, target - margin)
      << "p=" << p << " answer=" << answer << " n=" << n;
}

std::vector<double> SortedCopy(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(GkQuantileTest, ExactOnSmallSamples) {
  GkQuantileSketch gk(0.01);
  EXPECT_TRUE(gk.empty());
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) gk.Add(v);
  EXPECT_EQ(gk.count(), 5u);
  // With 5 values and eps*n << 1 every quantile must be rank-exact.
  EXPECT_EQ(gk.Quantile(0.0), 1.0);
  EXPECT_EQ(gk.Quantile(0.5), 3.0);
  EXPECT_EQ(gk.Quantile(1.0), 5.0);
}

TEST(GkQuantileTest, EpsilonBoundAcrossDistributions) {
  const double kEps = 0.005;
  const size_t kN = 200000;
  Pcg32 rng(42, 7);
  struct Case {
    const char* name;
    std::vector<double> values;
  };
  std::vector<Case> cases;
  {
    Case uniform{"uniform", {}};
    for (size_t i = 0; i < kN; ++i) uniform.values.push_back(rng.NextDouble());
    cases.push_back(std::move(uniform));
  }
  {
    // Log-normal-ish heavy tail: the shape of per-job bytes in the paper.
    Case heavy{"heavy-tail", {}};
    for (size_t i = 0; i < kN; ++i) {
      heavy.values.push_back(std::pow(10.0, rng.NextDouble(0.0, 12.0)));
    }
    cases.push_back(std::move(heavy));
  }
  {
    // Many ties: durations rounded to whole seconds.
    Case ties{"ties", {}};
    for (size_t i = 0; i < kN; ++i) {
      ties.values.push_back(static_cast<double>(rng.NextBounded(100)));
    }
    cases.push_back(std::move(ties));
  }
  {
    Case sorted_input{"sorted", {}};
    for (size_t i = 0; i < kN; ++i) {
      sorted_input.values.push_back(static_cast<double>(i));
    }
    cases.push_back(std::move(sorted_input));
  }
  for (const Case& c : cases) {
    GkQuantileSketch gk(kEps);
    for (double v : c.values) gk.Add(v);
    const std::vector<double> sorted = SortedCopy(c.values);
    for (double p : {0.01, 0.25, 0.5, 0.75, 0.9, 0.99}) {
      SCOPED_TRACE(c.name);
      ExpectWithinRankEpsilon(gk, sorted, p, kEps);
    }
    // Memory actually stays sketch-sized, not sample-sized.
    EXPECT_LT(gk.TupleCount(), 8.0 / kEps) << c.name;
  }
}

TEST(GkQuantileTest, MergePreservesEpsilonBound) {
  const double kEps = 0.005;
  Pcg32 rng(9, 3);
  std::vector<double> all;
  GkQuantileSketch merged(kEps);
  // 40 shards of uneven sizes, folded in order — the analyzer's chunk
  // pattern across many follow-mode batches.
  for (int shard = 0; shard < 40; ++shard) {
    GkQuantileSketch part(kEps);
    const size_t count = 1000 + 137 * static_cast<size_t>(shard);
    for (size_t i = 0; i < count; ++i) {
      const double v = std::pow(10.0, rng.NextDouble(0.0, 9.0));
      part.Add(v);
      all.push_back(v);
    }
    merged.Merge(part);
  }
  EXPECT_EQ(merged.count(), all.size());
  const std::vector<double> sorted = SortedCopy(all);
  for (double p : {0.05, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    ExpectWithinRankEpsilon(merged, sorted, p, kEps);
  }
}

TEST(GkQuantileTest, MergeOrderAndChunkingAreDeterministic) {
  // The same values chunked the same way always fold to the same sketch —
  // the property the analyzer's fixed-grain chunking leans on for
  // thread-count-independent output.
  Pcg32 rng(4, 4);
  std::vector<double> values;
  for (size_t i = 0; i < 50000; ++i) values.push_back(rng.NextDouble());
  auto build = [&values]() {
    GkQuantileSketch total(0.005);
    for (size_t chunk = 0; chunk < values.size(); chunk += 4096) {
      GkQuantileSketch part(0.005);
      const size_t end = std::min(values.size(), chunk + 4096);
      for (size_t i = chunk; i < end; ++i) part.Add(values[i]);
      total.Merge(part);
    }
    return total;
  };
  GkQuantileSketch a = build();
  GkQuantileSketch b = build();
  for (double p = 0.0; p <= 1.0; p += 0.01) {
    ASSERT_EQ(a.Quantile(p), b.Quantile(p)) << p;
  }
}

TEST(GkQuantileTest, MergeWithEmptyAndSelf) {
  GkQuantileSketch gk(0.01);
  for (int i = 0; i < 1000; ++i) gk.Add(static_cast<double>(i));
  GkQuantileSketch empty(0.01);
  gk.Merge(empty);
  EXPECT_EQ(gk.count(), 1000u);
  empty.Merge(gk);
  EXPECT_EQ(empty.count(), 1000u);
  gk.Merge(gk);  // self-merge doubles the mass without corrupting
  EXPECT_EQ(gk.count(), 2000u);
  const std::vector<double> sorted_once = [] {
    std::vector<double> v;
    for (int i = 0; i < 1000; ++i) v.push_back(static_cast<double>(i));
    return v;
  }();
  // Self-merged median still lands mid-range.
  EXPECT_NEAR(gk.Quantile(0.5), 500.0, 0.02 * 2000.0);
  (void)sorted_once;
}

// --- P2 single-quantile ---------------------------------------------------

TEST(P2QuantileTest, ExactUnderFiveSamples) {
  P2Quantile p2(0.5);
  p2.Add(3.0);
  EXPECT_EQ(p2.Estimate(), 3.0);
  p2.Add(1.0);
  p2.Add(2.0);
  EXPECT_EQ(p2.Estimate(), 2.0);
}

TEST(P2QuantileTest, ConvergesOnUniform) {
  Pcg32 rng(11, 2);
  P2Quantile median(0.5);
  P2Quantile p90(0.9);
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.NextDouble();
    median.Add(v);
    p90.Add(v);
  }
  EXPECT_NEAR(median.Estimate(), 0.5, 0.02);
  EXPECT_NEAR(p90.Estimate(), 0.9, 0.02);
}

// --- Space-Saving ---------------------------------------------------------

TEST(SpaceSavingTest, ExactWhenUnderCapacity) {
  SpaceSavingSketch sketch(16);
  for (uint64_t k = 0; k < 10; ++k) {
    for (uint64_t i = 0; i <= k; ++i) sketch.Add(k);
  }
  auto top = sketch.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 9u);
  EXPECT_EQ(top[0].count, 10u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, 8u);
  EXPECT_EQ(top[2].key, 7u);
  EXPECT_EQ(sketch.MinCount(), 0u);  // not full yet
}

TEST(SpaceSavingTest, GuaranteesOnZipfStream) {
  // A Zipf(1.0) stream over 10k keys tracked with only 64 slots: every
  // reported count must over-approximate the truth by at most its error
  // bound, and genuinely heavy keys must be present.
  Pcg32 rng(123, 5);
  const size_t kKeys = 10000;
  const size_t kStream = 400000;
  std::vector<double> weights(kKeys);
  double total_weight = 0.0;
  for (size_t k = 0; k < kKeys; ++k) {
    weights[k] = 1.0 / static_cast<double>(k + 1);
    total_weight += weights[k];
  }
  std::vector<double> cumulative(kKeys);
  double acc = 0.0;
  for (size_t k = 0; k < kKeys; ++k) {
    acc += weights[k] / total_weight;
    cumulative[k] = acc;
  }
  SpaceSavingSketch sketch(64);
  std::map<uint64_t, uint64_t> exact;
  for (size_t i = 0; i < kStream; ++i) {
    const double u = rng.NextDouble();
    const size_t key = static_cast<size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    sketch.Add(key);
    ++exact[key];
  }
  EXPECT_EQ(sketch.total_weight(), kStream);
  for (const auto& hitter : sketch.TopK(64)) {
    const uint64_t truth = exact.count(hitter.key) ? exact[hitter.key] : 0;
    EXPECT_GE(hitter.count, truth);                 // never underestimates
    EXPECT_LE(hitter.count - hitter.error, truth);  // error bound honest
  }
  // Any key with true count above N/capacity must be tracked.
  const uint64_t threshold = kStream / 64;
  auto top = sketch.TopK(64);
  for (const auto& [key, count] : exact) {
    if (count <= threshold) continue;
    const bool present =
        std::any_of(top.begin(), top.end(),
                    [key = key](const SpaceSavingSketch::HeavyHitter& h) {
                      return h.key == key;
                    });
    EXPECT_TRUE(present) << "heavy key " << key << " (count " << count
                         << ") evicted";
  }
  // The top of the ranking is exact for a skew this strong: key 0 leads.
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].key, 0u);
}

TEST(SpaceSavingTest, DeterministicVictimSelection) {
  auto run = []() {
    SpaceSavingSketch sketch(4);
    const uint64_t stream[] = {1, 2, 3, 4, 5, 6, 5, 5, 7, 8, 2, 2, 9};
    for (uint64_t k : stream) sketch.Add(k);
    return sketch.TopK(4);
  };
  auto a = run();
  auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].count, b[i].count);
    EXPECT_EQ(a[i].error, b[i].error);
  }
}

TEST(SpaceSavingTest, MergeAddsCountsAndChargesAbsentKeys) {
  SpaceSavingSketch a(8);
  SpaceSavingSketch b(8);
  for (int i = 0; i < 10; ++i) a.Add(1);
  for (int i = 0; i < 4; ++i) a.Add(2);
  for (int i = 0; i < 6; ++i) b.Add(1);
  for (int i = 0; i < 3; ++i) b.Add(3);
  a.Merge(b);
  EXPECT_EQ(a.total_weight(), 23u);
  auto top = a.TopK(8);
  ASSERT_GE(top.size(), 3u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_EQ(top[0].count, 16u);  // both sides tracked key 1 exactly
  EXPECT_EQ(top[0].error, 0u);   // neither side was full: no slack charged
}

// --- Sliding window -------------------------------------------------------

TEST(SlidingWindowTest, ExactWithinWindow) {
  SlidingWindowSeries window(3600.0, 4);
  window.Observe(0.0, 1.0);
  window.Observe(1800.0, 2.0);   // same bucket
  window.Observe(3600.0, 5.0);   // next bucket
  window.Observe(10800.0, 7.0);  // bucket 3
  const std::vector<double> live = window.Window();
  ASSERT_EQ(live.size(), 4u);
  EXPECT_EQ(live[0], 3.0);
  EXPECT_EQ(live[1], 5.0);
  EXPECT_EQ(live[2], 0.0);
  EXPECT_EQ(live[3], 7.0);
  EXPECT_EQ(window.dropped_stale(), 0u);
}

TEST(SlidingWindowTest, OldBucketsFallOff) {
  SlidingWindowSeries window(1.0, 3);
  window.Observe(0.0, 1.0);
  window.Observe(1.0, 2.0);
  window.Observe(2.0, 3.0);
  window.Observe(5.0, 9.0);  // advances past buckets 0-2
  const std::vector<double> live = window.Window();
  ASSERT_EQ(live.size(), 3u);
  EXPECT_EQ(live[0], 0.0);  // bucket 3: empty
  EXPECT_EQ(live[1], 0.0);  // bucket 4: empty
  EXPECT_EQ(live[2], 9.0);  // bucket 5
  // A stale observation (before the live window) is dropped and counted.
  window.Observe(1.5, 100.0);
  EXPECT_EQ(window.dropped_stale(), 1u);
  EXPECT_EQ(window.Window()[2], 9.0);
}

TEST(SlidingWindowTest, PeakToMedianMatchesBatchProfileOnWindow) {
  SlidingWindowSeries window(3600.0, 168);
  std::vector<double> reference;
  Pcg32 rng(77, 1);
  for (size_t hour = 0; hour < 168; ++hour) {
    const double value = 1.0 + rng.NextBounded(50);
    window.Observe(static_cast<double>(hour) * 3600.0 + 12.0, value);
    reference.push_back(value);
  }
  BurstinessProfile batch(reference);
  EXPECT_DOUBLE_EQ(window.PeakToMedian(), batch.PeakToMedian());
}

// --- Online Zipf ----------------------------------------------------------

TEST(OnlineZipfTest, MatchesBatchFitExactly) {
  // The streaming tracker must run the identical operations as the batch
  // popularity analysis: nonzero counts in id order, sorted descending,
  // FitZipf. Byte-identical outputs, not merely close ones.
  Pcg32 rng(5, 9);
  OnlineZipf tracker;
  std::vector<uint64_t> counts(500, 0);
  for (int i = 0; i < 100000; ++i) {
    const uint32_t id =
        static_cast<uint32_t>(rng.NextBounded(counts.size()) *
                              rng.NextDouble() * rng.NextDouble());
    tracker.Add(id);
    ++counts[id];
  }
  // Batch reference: identical op sequence.
  std::vector<double> frequencies;
  for (uint64_t c : counts) {
    if (c > 0) frequencies.push_back(static_cast<double>(c));
  }
  std::sort(frequencies.begin(), frequencies.end(), std::greater<double>());
  ZipfFitResult batch = FitZipf(frequencies);

  OnlineZipf::Snapshot snapshot = tracker.Fit();
  ASSERT_EQ(snapshot.frequencies.size(), frequencies.size());
  for (size_t i = 0; i < frequencies.size(); ++i) {
    ASSERT_EQ(snapshot.frequencies[i], frequencies[i]) << i;
  }
  EXPECT_EQ(snapshot.fit.slope, batch.slope);
  EXPECT_EQ(snapshot.fit.intercept, batch.intercept);
  EXPECT_EQ(snapshot.fit.r_squared, batch.r_squared);
  EXPECT_EQ(snapshot.total_accesses, 100000u);
}

TEST(OnlineZipfTest, MergeAddsCounts) {
  OnlineZipf a;
  OnlineZipf b;
  a.Add(0, 5);
  a.Add(3, 2);
  b.Add(0, 1);
  b.Add(7, 4);
  a.Merge(b);
  EXPECT_EQ(a.total(), 12u);
  EXPECT_EQ(a.distinct(), 3u);
  EXPECT_EQ(a.counts()[0], 6u);
  EXPECT_EQ(a.counts()[3], 2u);
  EXPECT_EQ(a.counts()[7], 4u);
}

}  // namespace
}  // namespace swim::stats

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "stats/empirical_cdf.h"
#include "stats/histogram.h"
#include "stats/regression.h"
#include "stats/sampling.h"
#include "stats/zipf.h"

namespace swim::stats {
namespace {

// --- Descriptive ----------------------------------------------------------

TEST(DescriptiveTest, MeanVarianceStdDev) {
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_NEAR(Variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DescriptiveTest, EmptyInputsAreZero) {
  std::vector<double> empty;
  EXPECT_EQ(Mean(empty), 0.0);
  EXPECT_EQ(Variance(empty), 0.0);
  EXPECT_EQ(Median(empty), 0.0);
  EXPECT_EQ(Quantile(empty, 0.5), 0.0);
  EXPECT_EQ(Min(empty), 0.0);
  EXPECT_EQ(Max(empty), 0.0);
  EXPECT_EQ(GeometricMean(empty), 0.0);
}

TEST(DescriptiveTest, MedianInterpolates) {
  EXPECT_DOUBLE_EQ(Median({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Median({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Median({5}), 5.0);
}

TEST(DescriptiveTest, QuantileEdges) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Quantile(v, -3.0), 10.0);  // clamped
  EXPECT_DOUBLE_EQ(Quantile(v, 2.0), 40.0);   // clamped
}

TEST(DescriptiveTest, GeometricMeanSkipsNonPositive) {
  EXPECT_NEAR(GeometricMean({1, 100}), 10.0, 1e-9);
  EXPECT_NEAR(GeometricMean({0, -5, 1, 100}), 10.0, 1e-9);
}

TEST(DescriptiveTest, SummaryFields) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  Summary s = Summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 0.2);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
}

// --- SortedStats ------------------------------------------------------------

TEST(SortedStatsTest, MatchesFreeFunctions) {
  Pcg32 rng(51);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.NextLognormal(5, 2));
  SortedStats stats(v);
  // Moments accumulate over the sorted order, so allow an ulp-scale
  // difference against the original-order free functions.
  EXPECT_NEAR(stats.Mean(), Mean(v), 1e-12 * std::abs(Mean(v)));
  EXPECT_NEAR(stats.Sum(), Sum(v), 1e-12 * std::abs(Sum(v)));
  EXPECT_NEAR(stats.Variance(), Variance(v), 1e-9 * Variance(v));
  EXPECT_NEAR(stats.StdDev(), StdDev(v), 1e-9 * StdDev(v));
  EXPECT_DOUBLE_EQ(stats.Min(), Min(v));
  EXPECT_DOUBLE_EQ(stats.Max(), Max(v));
  for (double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(stats.Quantile(p), Quantile(v, p));
  }
  EXPECT_DOUBLE_EQ(stats.Median(), Median(v));
}

TEST(SortedStatsTest, EmptyIsAllZero) {
  SortedStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.Quantile(0.5), 0.0);
  EXPECT_EQ(stats.Mean(), 0.0);
  EXPECT_EQ(stats.Variance(), 0.0);
  EXPECT_EQ(stats.Min(), 0.0);
  EXPECT_EQ(stats.Max(), 0.0);
  EXPECT_EQ(stats.ToSummary().count, 0u);
}

TEST(SortedStatsTest, SummaryMatchesSummarize) {
  std::vector<double> v = {9, 1, 4, 7, 2, 8, 3, 6, 5, 10};
  Summary from_class = SortedStats(v).ToSummary();
  Summary from_free = Summarize(v);
  EXPECT_EQ(from_class.count, from_free.count);
  EXPECT_DOUBLE_EQ(from_class.mean, from_free.mean);
  EXPECT_DOUBLE_EQ(from_class.stddev, from_free.stddev);
  EXPECT_DOUBLE_EQ(from_class.median, from_free.median);
  EXPECT_DOUBLE_EQ(from_class.p90, from_free.p90);
  EXPECT_DOUBLE_EQ(from_class.sum, from_free.sum);
}

// --- EmpiricalCdf ----------------------------------------------------------

TEST(EmpiricalCdfTest, FractionAndQuantile) {
  EmpiricalCdf cdf({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(cdf.Fraction(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.Fraction(3), 0.6);
  EXPECT_DOUBLE_EQ(cdf.Fraction(10), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 3.0);
}

TEST(EmpiricalCdfTest, SampleStaysInSupport) {
  EmpiricalCdf cdf({5, 6, 9});
  Pcg32 rng(4);
  for (int i = 0; i < 1000; ++i) {
    double v = cdf.Sample(rng);
    EXPECT_GE(v, 5.0);
    EXPECT_LE(v, 9.0);
  }
}

TEST(EmpiricalCdfTest, KsDistanceIdenticalIsZero) {
  EmpiricalCdf a({1, 2, 3});
  EXPECT_DOUBLE_EQ(EmpiricalCdf::KsDistance(a, a), 0.0);
}

TEST(EmpiricalCdfTest, KsDistanceDisjointIsOne) {
  EmpiricalCdf a({1, 2});
  EmpiricalCdf b({10, 20});
  EXPECT_DOUBLE_EQ(EmpiricalCdf::KsDistance(a, b), 1.0);
}

TEST(EmpiricalCdfTest, KsDistanceEmptyCases) {
  EmpiricalCdf empty;
  EmpiricalCdf a({1.0});
  EXPECT_DOUBLE_EQ(EmpiricalCdf::KsDistance(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(EmpiricalCdf::KsDistance(empty, a), 1.0);
}

TEST(EmpiricalCdfTest, LogCurveMonotone) {
  Pcg32 rng(8);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(rng.NextLognormal(10, 3));
  EmpiricalCdf cdf(std::move(samples));
  auto curve = cdf.LogCurve(32);
  ASSERT_EQ(curve.x.size(), 32u);
  for (size_t i = 1; i < curve.x.size(); ++i) {
    EXPECT_GT(curve.x[i], curve.x[i - 1]);
    EXPECT_GE(curve.fraction[i], curve.fraction[i - 1]);
  }
  EXPECT_DOUBLE_EQ(curve.fraction.back(), 1.0);
}

// --- Histograms -------------------------------------------------------------

TEST(LogHistogramTest, BinsAndOverflow) {
  LogHistogram h(1.0, 1e6, 1);
  h.Add(0.5);    // underflow
  h.Add(10);     // decade 1
  h.Add(1e7);    // overflow
  EXPECT_DOUBLE_EQ(h.total_weight(), 3.0);
  EXPECT_DOUBLE_EQ(h.BinWeight(0), 1.0);
  EXPECT_DOUBLE_EQ(h.BinWeight(h.bin_count() - 1), 1.0);
  auto cumulative = h.CumulativeFractions();
  EXPECT_DOUBLE_EQ(cumulative.back(), 1.0);
}

TEST(LogHistogramTest, WeightsAccumulate) {
  LogHistogram h(1.0, 1e3, 2);
  h.Add(50, 2.5);
  h.Add(50, 1.5);
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.0);
}

TEST(LinearHistogramTest, Basic) {
  LinearHistogram h(0.0, 10.0, 5);
  h.Add(-1);   // clamped to first bin
  h.Add(3);
  h.Add(9.9);
  h.Add(100);  // clamped to last bin
  EXPECT_DOUBLE_EQ(h.BinWeight(0), 1.0);
  EXPECT_DOUBLE_EQ(h.BinWeight(1), 1.0);
  EXPECT_DOUBLE_EQ(h.BinWeight(4), 2.0);
  EXPECT_DOUBLE_EQ(h.BinLowerEdge(2), 4.0);
}

// --- Regression --------------------------------------------------------------

TEST(RegressionTest, ExactLine) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {3, 5, 7, 9};  // y = 2x + 1
  LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(RegressionTest, DegenerateInputs) {
  EXPECT_EQ(FitLine({}, {}).n, 0u);
  EXPECT_EQ(FitLine({1}, {2}).slope, 0.0);
  // Constant x: no slope is defined.
  LinearFit fit = FitLine({2, 2, 2}, {1, 2, 3});
  EXPECT_EQ(fit.slope, 0.0);
}

// --- Zipf ---------------------------------------------------------------------

TEST(ZipfFitTest, RecoversKnownSlope) {
  // Perfect Zipf frequencies: f(r) = 1e6 * r^{-5/6}.
  std::vector<double> freqs;
  for (int r = 1; r <= 2000; ++r) {
    freqs.push_back(1e6 * std::pow(r, -5.0 / 6.0));
  }
  ZipfFitResult fit = FitZipf(freqs);
  EXPECT_NEAR(fit.slope, 5.0 / 6.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(ZipfFitTest, IgnoresZeroFrequencies) {
  ZipfFitResult fit = FitZipf({10, 0, 5, 0, 2});
  EXPECT_EQ(fit.ranks, 3u);
}

TEST(ZipfFitTest, TooFewRanks) {
  EXPECT_EQ(FitZipf({}).slope, 0.0);
  EXPECT_EQ(FitZipf({5}).slope, 0.0);
}

TEST(ZipfSamplerTest, PmfMatchesTheory) {
  ZipfSampler sampler(100, 1.0);
  double h100 = 0.0;
  for (int r = 1; r <= 100; ++r) h100 += 1.0 / r;
  EXPECT_NEAR(sampler.Pmf(0), 1.0 / h100, 1e-12);
  EXPECT_NEAR(sampler.Pmf(99), 0.01 / h100, 1e-12);
}

TEST(ZipfSamplerTest, EmpiricalFrequenciesMatchPmf) {
  ZipfSampler sampler(50, 5.0 / 6.0);
  Pcg32 rng(23);
  std::vector<int> counts(50, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, sampler.Pmf(0), 0.005);
  EXPECT_NEAR(static_cast<double>(counts[10]) / n, sampler.Pmf(10), 0.005);
}

TEST(ZipfSamplerTest, UniformWhenSlopeZero) {
  ZipfSampler sampler(10, 0.0);
  for (size_t i = 0; i < 10; ++i) EXPECT_NEAR(sampler.Pmf(i), 0.1, 1e-12);
}

TEST(ZipfSamplerTest, SampledFrequenciesRefitToSameSlope) {
  // End-to-end: sample from Zipf(0.83), count, fit - the generator/analysis
  // loop behind Figure 2.
  ZipfSampler sampler(500, 0.83);
  Pcg32 rng(29);
  std::vector<double> counts(500, 0.0);
  for (int i = 0; i < 300000; ++i) counts[sampler.Sample(rng)] += 1.0;
  ZipfFitResult fit = FitZipf(counts);
  EXPECT_NEAR(fit.slope, 0.83, 0.12);
}

// --- Correlation ---------------------------------------------------------------

TEST(CorrelationTest, PerfectPositiveAndNegative) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  std::vector<double> z = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
}

TEST(CorrelationTest, ConstantSeriesIsZero) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> c = {5, 5, 5};
  EXPECT_EQ(PearsonCorrelation(x, c), 0.0);
}

TEST(CorrelationTest, SpearmanHandlesMonotoneNonlinear) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {1, 8, 27, 64, 125};  // monotone, nonlinear
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(x, y), 1.0);
}

TEST(CorrelationTest, SpearmanTiesGetAverageRanks) {
  std::vector<double> x = {1, 2, 2, 3};
  std::vector<double> y = {1, 2, 2, 3};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

std::vector<std::vector<double>> CorrelatedSeries(size_t dims, size_t n) {
  Pcg32 rng(67);
  std::vector<std::vector<double>> series(dims, std::vector<double>(n));
  for (size_t t = 0; t < n; ++t) {
    double shared = rng.NextGaussian();
    for (size_t d = 0; d < dims; ++d) {
      series[d][t] = shared * static_cast<double>(d + 1) + rng.NextGaussian();
    }
  }
  return series;
}

TEST(CorrelationTest, PearsonMatrixMatchesPairwiseCalls) {
  auto series = CorrelatedSeries(4, 200);
  CorrelationMatrix m = PearsonMatrix(series);
  ASSERT_EQ(m.dims, 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(m.at(i, i), 1.0, 1e-12);
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(m.at(i, j), m.at(j, i));
      EXPECT_DOUBLE_EQ(m.at(i, j), PearsonCorrelation(series[i], series[j]));
    }
  }
}

TEST(CorrelationTest, SpearmanMatrixMatchesPairwiseCalls) {
  auto series = CorrelatedSeries(5, 150);
  CorrelationMatrix m = SpearmanMatrix(series);
  ASSERT_EQ(m.dims, 5u);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(m.at(i, j), SpearmanCorrelation(series[i], series[j]),
                  1e-12);
    }
  }
}

TEST(CorrelationTest, MatricesAreByteIdenticalAcrossThreadCounts) {
  auto series = CorrelatedSeries(6, 300);
  EXPECT_EQ(PearsonMatrix(series, 1).values, PearsonMatrix(series, 8).values);
  EXPECT_EQ(SpearmanMatrix(series, 1).values,
            SpearmanMatrix(series, 8).values);
}

// --- Sampling --------------------------------------------------------------------

TEST(ReservoirSamplerTest, KeepsAllWhenUnderCapacity) {
  ReservoirSampler<int> sampler(10, Pcg32(31));
  for (int i = 0; i < 5; ++i) sampler.Add(i);
  EXPECT_EQ(sampler.sample().size(), 5u);
  EXPECT_EQ(sampler.seen(), 5u);
}

TEST(ReservoirSamplerTest, CapsAndIsApproximatelyUniform) {
  // Each of 1000 items should land in a 100-slot reservoir w.p. ~0.1.
  int first_half = 0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    ReservoirSampler<int> sampler(100, Pcg32(seed));
    for (int i = 0; i < 1000; ++i) sampler.Add(i);
    EXPECT_EQ(sampler.sample().size(), 100u);
    for (int v : sampler.sample()) {
      if (v < 500) ++first_half;
    }
  }
  EXPECT_NEAR(first_half / 30.0, 50.0, 6.0);
}

TEST(ShuffleTest, PermutesAllElements) {
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  Pcg32 rng(37);
  Shuffle(v, rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(ResampleTest, DrawsFromValues) {
  Pcg32 rng(41);
  std::vector<double> result = Resample({1.0, 2.0}, 100, rng);
  ASSERT_EQ(result.size(), 100u);
  for (double v : result) EXPECT_TRUE(v == 1.0 || v == 2.0);
}

TEST(DiscreteSamplerTest, MatchesWeights) {
  DiscreteSampler sampler({1.0, 3.0, 0.0, 6.0});
  Pcg32 rng(43);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(rng)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.6, 0.01);
}

// Cumulative-table inverse-CDF sampler: the O(log n)-per-draw reference the
// alias table replaced. Consumes one uniform deviate per draw, like
// AliasTable::Sample.
size_t CumulativeSearchSample(const std::vector<double>& cumulative,
                              Pcg32& rng) {
  double u = rng.NextDouble() * cumulative.back();
  size_t i = static_cast<size_t>(
      std::lower_bound(cumulative.begin(), cumulative.end(), u) -
      cumulative.begin());
  return std::min(i, cumulative.size() - 1);
}

// Chi-squared property test: under a fixed seed, both the alias table and
// the cumulative-search reference must match the target pmf. 400k draws
// over 32 Zipf-shaped bins; the 99.9th percentile of chi2(df=31) is ~61.1,
// so 70 gives comfortable slack while still catching any systematic bias
// (e.g. an off-by-one in the alias construction shifts chi2 into the
// thousands).
TEST(AliasTableTest, ChiSquaredMatchesCumulativeSearchReference) {
  std::vector<double> weights;
  double total = 0.0;
  for (int i = 0; i < 32; ++i) {
    weights.push_back(std::pow(static_cast<double>(i + 1), -0.83));
    total += weights.back();
  }
  std::vector<double> cumulative;
  double running = 0.0;
  for (double w : weights) cumulative.push_back(running += w);

  const int n = 400000;
  AliasTable table(weights);
  std::vector<double> alias_counts(weights.size(), 0.0);
  std::vector<double> search_counts(weights.size(), 0.0);
  Pcg32 alias_rng(61);
  Pcg32 search_rng(61);
  for (int i = 0; i < n; ++i) {
    alias_counts[table.Sample(alias_rng)] += 1.0;
    search_counts[CumulativeSearchSample(cumulative, search_rng)] += 1.0;
  }

  auto chi_squared = [&](const std::vector<double>& counts) {
    double chi2 = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      double expected = n * weights[i] / total;
      chi2 += (counts[i] - expected) * (counts[i] - expected) / expected;
    }
    return chi2;
  };
  EXPECT_LT(chi_squared(alias_counts), 70.0);
  EXPECT_LT(chi_squared(search_counts), 70.0);
}

TEST(AliasTableTest, DeterministicAcrossInstances) {
  // Same weights + same seed => identical sample stream, run to run.
  std::vector<double> weights = {0.2, 5.0, 1.0, 3.7, 0.0, 2.2};
  AliasTable a(weights);
  AliasTable b(weights);
  Pcg32 rng_a(7);
  Pcg32 rng_b(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Sample(rng_a), b.Sample(rng_b));
  }
}

TEST(AliasTableTest, ConsumesExactlyOneDeviatePerDraw) {
  // The determinism contract: each Sample advances the RNG by exactly one
  // NextDouble, so alias-table consumers stay stream-compatible with a
  // single cumulative probe.
  AliasTable table({1.0, 2.0, 3.0, 4.0});
  Pcg32 sampled(11);
  Pcg32 advanced(11);
  for (int i = 0; i < 100; ++i) table.Sample(sampled);
  for (int i = 0; i < 100; ++i) advanced.NextDouble();
  EXPECT_EQ(sampled(), advanced());
}

TEST(AliasTableTest, SingleColumnAlwaysReturnsZero) {
  AliasTable table({42.0});
  Pcg32 rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

}  // namespace
}  // namespace swim::stats

// Edge-case coverage across modules: degenerate inputs, formatting
// round-trips, boundary behavior that the per-module suites do not
// exercise.
#include <cmath>
#include <string>

#include "common/units.h"
#include "core/analysis/workload_report.h"
#include "core/synth/synthesizer.h"
#include "core/synth/workload_model.h"
#include "gtest/gtest.h"
#include "stats/empirical_cdf.h"
#include "stats/histogram.h"
#include "trace/trace.h"
#include "trace/trace_io.h"

namespace swim {
namespace {

trace::JobRecord TinyJob(uint64_t id, double submit) {
  trace::JobRecord job;
  job.job_id = id;
  job.submit_time = submit;
  job.duration = 1;
  job.input_bytes = 1;
  job.map_tasks = 1;
  job.map_task_seconds = 1;
  return job;
}

// --- EmpiricalCdf degenerate shapes -----------------------------------------

TEST(EdgeCdfTest, SingleValueCdf) {
  stats::EmpiricalCdf cdf({5.0});
  EXPECT_DOUBLE_EQ(cdf.median(), 5.0);
  EXPECT_DOUBLE_EQ(cdf.Fraction(4.9), 0.0);
  EXPECT_DOUBLE_EQ(cdf.Fraction(5.0), 1.0);
  auto curve = cdf.LogCurve(16);
  ASSERT_FALSE(curve.x.empty());
  EXPECT_DOUBLE_EQ(curve.fraction.back(), 1.0);
}

TEST(EdgeCdfTest, AllZerosCdf) {
  stats::EmpiricalCdf cdf({0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(cdf.median(), 0.0);
  EXPECT_DOUBLE_EQ(cdf.Fraction(0.0), 1.0);
  // LogCurve clamps to its floor and still terminates.
  auto curve = cdf.LogCurve(8);
  EXPECT_FALSE(curve.x.empty());
}

TEST(EdgeCdfTest, EmptySample) {
  stats::EmpiricalCdf cdf;
  Pcg32 rng(1);
  EXPECT_DOUBLE_EQ(cdf.Sample(rng), 0.0);
  EXPECT_TRUE(cdf.LogCurve().x.empty());
}

TEST(EdgeCdfTest, LogCurveSinglePointRequest) {
  // points == 1 used to divide by (points - 1); must return one finite
  // point at the max, not NaN.
  stats::EmpiricalCdf cdf({1.0, 10.0, 100.0});
  auto curve = cdf.LogCurve(1);
  ASSERT_EQ(curve.x.size(), 1u);
  EXPECT_TRUE(std::isfinite(curve.x[0]));
  EXPECT_DOUBLE_EQ(curve.x[0], 100.0);
  EXPECT_DOUBLE_EQ(curve.fraction[0], 1.0);
}

TEST(EdgeCdfTest, LogCurveNonPositiveSamplesStayFinite) {
  // With a non-positive floor, samples <= 0 used to feed std::log10
  // directly -> NaN grid. The curve must start at the smallest positive
  // sample instead.
  stats::EmpiricalCdf cdf({0.0, 0.0, 2.0, 20.0});
  auto curve = cdf.LogCurve(8, /*floor=*/0.0);
  ASSERT_FALSE(curve.x.empty());
  for (size_t i = 0; i < curve.x.size(); ++i) {
    EXPECT_TRUE(std::isfinite(curve.x[i])) << i;
    EXPECT_TRUE(std::isfinite(curve.fraction[i])) << i;
  }
  EXPECT_GE(curve.x.front(), 2.0 * 0.99);
  EXPECT_DOUBLE_EQ(curve.fraction.back(), 1.0);

  // Entirely non-positive: degenerate single point, still finite.
  stats::EmpiricalCdf zeros({-1.0, 0.0});
  auto flat = zeros.LogCurve(4, /*floor=*/-5.0);
  ASSERT_FALSE(flat.x.empty());
  for (double x : flat.x) EXPECT_TRUE(std::isfinite(x));
  EXPECT_DOUBLE_EQ(flat.fraction.back(), 1.0);
}

// --- Histogram rendering ------------------------------------------------------

TEST(EdgeHistogramTest, ToStringListsNonEmptyBins) {
  stats::LogHistogram h(1.0, 1e4, 1);
  h.Add(50);
  h.Add(5000);
  std::string text = h.ToString();
  EXPECT_NE(text.find("1"), std::string::npos);
  // Two populated bins -> two lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

// --- Units boundaries ------------------------------------------------------------

TEST(EdgeUnitsTest, ExactUnitBoundaries) {
  EXPECT_EQ(FormatBytes(kKB), "1 KB");
  EXPECT_EQ(FormatBytes(kKB - 1), "999 B");
  EXPECT_EQ(FormatDuration(kMinute), "1 min");
  EXPECT_EQ(FormatDuration(kHour), "1 hrs");
  EXPECT_EQ(FormatDuration(0), "0 sec");
}

// --- Trace with out-of-order bulk set ----------------------------------------------

TEST(EdgeTraceTest, SetJobsSortsBulk) {
  trace::Trace t;
  std::vector<trace::JobRecord> jobs;
  for (int i = 9; i >= 0; --i) jobs.push_back(TinyJob(i + 1, i * 10.0));
  t.SetJobs(std::move(jobs));
  EXPECT_DOUBLE_EQ(t.StartTime(), 0.0);
  EXPECT_EQ(t.jobs().front().job_id, 1u);   // submitted at t=0
  EXPECT_EQ(t.jobs().back().job_id, 10u);   // submitted at t=90
}

TEST(EdgeTraceTest, CsvHandlesCrlfAndBlankLines) {
  trace::Trace t;
  t.AddJob(TinyJob(1, 0));
  std::string csv = trace::TraceToCsv(t);
  // Re-join with CRLF and stray blank lines.
  std::string crlf;
  for (char c : csv) {
    if (c == '\n') {
      crlf += "\r\n\r\n";
    } else {
      crlf.push_back(c);
    }
  }
  auto parsed = trace::TraceFromCsv(crlf);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->size(), 1u);
}

// --- Report formatting without optional columns -------------------------------------

TEST(EdgeReportTest, FormatsTraceWithoutNamesOrPaths) {
  trace::Trace t;
  for (int i = 0; i < 50; ++i) t.AddJob(TinyJob(i + 1, i * 60.0));
  auto report = core::AnalyzeWorkload(t);
  ASSERT_TRUE(report.ok());
  std::string text = core::FormatReport(*report);
  EXPECT_NE(text.find("no file paths"), std::string::npos);
  EXPECT_NE(text.find("no job names"), std::string::npos);
}

// --- Synthesis at extreme scales ------------------------------------------------------

TEST(EdgeSynthTest, SingleExemplarModelStillSynthesizes) {
  trace::Trace t;
  t.AddJob(TinyJob(1, 100));
  auto model = core::BuildModel(t);
  ASSERT_TRUE(model.ok());
  core::SynthesisOptions options;
  options.job_count = 50;
  auto synth = core::SynthesizeTrace(*model, options);
  ASSERT_TRUE(synth.ok());
  EXPECT_EQ(synth->size(), 50u);
  EXPECT_TRUE(synth->Validate().ok());
}

TEST(EdgeSynthTest, SpanStretchExpandsArrivals) {
  trace::Trace t;
  for (int i = 0; i < 200; ++i) t.AddJob(TinyJob(i + 1, i * 30.0));
  auto model = core::BuildModel(t);
  ASSERT_TRUE(model.ok());
  core::SynthesisOptions options;
  options.job_count = 200;
  options.span_seconds = model->span_seconds * 10.0;
  auto synth = core::SynthesizeTrace(*model, options);
  ASSERT_TRUE(synth.ok());
  EXPECT_GT(synth->Span(), model->span_seconds * 2.0);
}

TEST(EdgeSynthTest, ParametricHandlesAllZeroDimension) {
  // A model whose jobs all have zero shuffle must not emit NaNs.
  trace::Trace t;
  for (int i = 0; i < 100; ++i) t.AddJob(TinyJob(i + 1, i));
  auto model = core::BuildModel(t);
  ASSERT_TRUE(model.ok());
  core::SynthesisOptions options;
  options.method = core::SynthesisMethod::kParametricLognormal;
  options.job_count = 100;
  auto synth = core::SynthesizeTrace(*model, options);
  ASSERT_TRUE(synth.ok());
  for (const auto& job : synth->jobs()) {
    EXPECT_FALSE(std::isnan(job.shuffle_bytes));
    EXPECT_DOUBLE_EQ(job.shuffle_bytes, 0.0);
  }
}

}  // namespace
}  // namespace swim

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/random.h"
#include "common/units.h"
#include "core/analysis/data_access.h"
#include "core/analysis/temporal.h"
#include "core/synth/scale_down.h"
#include "gtest/gtest.h"
#include "stats/burstiness.h"
#include "stats/empirical_cdf.h"
#include "stats/zipf.h"
#include "storage/cache.h"
#include "workloads/paper_workloads.h"
#include "workloads/trace_generator.h"

namespace swim {
namespace {

// --- RNG properties across seeds ------------------------------------------

class RngPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngPropertyTest, DoubleAlwaysInUnitInterval) {
  Pcg32 rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    double u = rng.NextDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST_P(RngPropertyTest, BoundedNeverExceedsBound) {
  Pcg32 rng(GetParam());
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 500; ++i) {
      ASSERT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST_P(RngPropertyTest, LognormalAlwaysPositive) {
  Pcg32 rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_GT(rng.NextLognormal(0.0, 2.0), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngPropertyTest,
                         ::testing::Values(0, 1, 2, 42, 1337, 0xdeadbeef,
                                           0xffffffffffffffffULL));

// --- Empirical CDF properties ------------------------------------------------

class CdfPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CdfPropertyTest, FractionIsMonotoneAndQuantileInverts) {
  Pcg32 rng(GetParam());
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.NextLognormal(5, 2));
  stats::EmpiricalCdf cdf(samples);
  double previous = -1.0;
  for (double x = cdf.min(); x <= cdf.max(); x *= 1.7) {
    double f = cdf.Fraction(x);
    ASSERT_GE(f, previous);
    previous = f;
  }
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    double q = cdf.Quantile(p);
    // Quantile must land inside the sample range and invert consistently.
    ASSERT_GE(q, cdf.min());
    ASSERT_LE(q, cdf.max());
    ASSERT_GE(cdf.Fraction(q) + 0.01, p);
  }
}

TEST_P(CdfPropertyTest, KsDistanceIsMetricLike) {
  Pcg32 rng(GetParam());
  std::vector<double> a_samples, b_samples;
  for (int i = 0; i < 300; ++i) {
    a_samples.push_back(rng.NextLognormal(3, 1));
    b_samples.push_back(rng.NextLognormal(4, 1));
  }
  stats::EmpiricalCdf a(a_samples), b(b_samples);
  double d_ab = stats::EmpiricalCdf::KsDistance(a, b);
  double d_ba = stats::EmpiricalCdf::KsDistance(b, a);
  ASSERT_DOUBLE_EQ(d_ab, d_ba);                  // symmetry
  ASSERT_GE(d_ab, 0.0);                          // non-negativity
  ASSERT_LE(d_ab, 1.0);                          // bounded
  ASSERT_DOUBLE_EQ(stats::EmpiricalCdf::KsDistance(a, a), 0.0);  // identity
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfPropertyTest,
                         ::testing::Values(3, 17, 99, 2024));

// --- Zipf sampler: heavier slope concentrates mass ---------------------------

TEST(ZipfPropertyTest, HeavierSlopeMoreConcentrated) {
  double previous_share = 0.0;
  for (double slope : {0.0, 0.5, 1.0, 1.5}) {
    stats::ZipfSampler sampler(1000, slope);
    double top10 = 0.0;
    for (size_t r = 0; r < 10; ++r) top10 += sampler.Pmf(r);
    ASSERT_GE(top10, previous_share);
    previous_share = top10;
  }
}

// --- Cache property: capacity monotonicity ------------------------------------

class CacheCapacityTest : public ::testing::TestWithParam<double> {};

TEST_P(CacheCapacityTest, MoreCapacityNeverHurtsLru) {
  // LRU is a stack algorithm: hit rate is monotone in capacity.
  Pcg32 rng(7);
  std::vector<storage::FileAccess> stream;
  for (int i = 0; i < 3000; ++i) {
    stream.push_back({static_cast<double>(i),
                      "f" + std::to_string(rng.NextBounded(200)), 1000.0,
                      storage::AccessKind::kRead, 0});
  }
  double capacity = GetParam();
  storage::LruCache smaller(capacity);
  storage::LruCache larger(capacity * 2);
  storage::ReplayAccesses(stream, smaller);
  storage::ReplayAccesses(stream, larger);
  EXPECT_GE(larger.stats().hits, smaller.stats().hits);
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacityTest,
                         ::testing::Values(5e3, 2e4, 5e4, 1e5, 2e5));

// --- Generator invariants across all workloads and seeds ------------------------

class GeneratorPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(GeneratorPropertyTest, StructuralInvariantsHold) {
  auto [name, seed] = GetParam();
  auto spec = workloads::PaperWorkloadByName(name);
  ASSERT_TRUE(spec.ok());
  workloads::GeneratorOptions options;
  options.job_count_override = 1500;
  options.seed = seed;
  auto trace = workloads::GenerateTrace(*spec, options);
  ASSERT_TRUE(trace.ok());

  // Every record passes schema validation.
  ASSERT_TRUE(trace->Validate().ok());
  // Submit times sorted and within span.
  double previous = -1.0;
  for (const auto& job : trace->jobs()) {
    ASSERT_GE(job.submit_time, previous);
    previous = job.submit_time;
    ASSERT_LE(job.submit_time, spec->span_seconds + 1.0);
    // Task-second / task-count consistency.
    if (job.map_task_seconds > 0) {
      ASSERT_GE(job.map_tasks, 1);
    }
    if (job.reduce_task_seconds > 0) {
      ASSERT_GE(job.reduce_tasks, 1);
    }
  }
  // Job ids unique.
  std::vector<uint64_t> ids;
  for (const auto& job : trace->jobs()) ids.push_back(job.job_id);
  std::sort(ids.begin(), ids.end());
  ASSERT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsXSeeds, GeneratorPropertyTest,
    ::testing::Combine(::testing::Values("CC-a", "CC-c", "CC-e", "FB-2009",
                                         "FB-2010"),
                       ::testing::Values(1u, 7u, 123u)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

// --- Scale-down composition ------------------------------------------------------

class ScaleDownPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(ScaleDownPropertyTest, ByteTotalsScaleLinearly) {
  auto spec = workloads::PaperWorkloadByName("CC-b");
  workloads::GeneratorOptions options;
  options.job_count_override = 800;
  auto trace = workloads::GenerateTrace(*spec, options);
  ASSERT_TRUE(trace.ok());
  double factor = GetParam();
  core::ScaleDownOptions scale;
  scale.data_factor = factor;
  auto scaled = core::ScaleDownTrace(*trace, scale);
  ASSERT_TRUE(scaled.ok());
  double before = 0, after = 0;
  for (const auto& j : trace->jobs()) before += j.TotalBytes();
  for (const auto& j : scaled->jobs()) after += j.TotalBytes();
  EXPECT_NEAR(after, before * factor, before * factor * 1e-9);
  EXPECT_TRUE(scaled->Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Factors, ScaleDownPropertyTest,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0));

// --- Analysis invariants on generated workloads ------------------------------------

TEST(AnalysisPropertyTest, ReaccessFractionsAreProbabilities) {
  for (const char* name : {"CC-b", "CC-c", "CC-d", "CC-e", "FB-2010"}) {
    auto spec = workloads::PaperWorkloadByName(name);
    workloads::GeneratorOptions options;
    options.job_count_override = 2000;
    auto trace = workloads::GenerateTrace(*spec, options);
    ASSERT_TRUE(trace.ok());
    auto fractions = core::ComputeReaccessFractions(*trace);
    EXPECT_GE(fractions.input_reaccess, 0.0);
    EXPECT_GE(fractions.output_reaccess, 0.0);
    EXPECT_LE(fractions.input_reaccess + fractions.output_reaccess, 1.0);
  }
}

TEST(AnalysisPropertyTest, BurstinessCurvePassesThroughMedian) {
  auto spec = workloads::PaperWorkloadByName("CC-d");
  workloads::GeneratorOptions options;
  options.job_count_override = 5000;
  auto trace = workloads::GenerateTrace(*spec, options);
  ASSERT_TRUE(trace.ok());
  auto burstiness = core::ComputeBurstiness(*trace);
  if (!burstiness.jobs.empty()) {
    EXPECT_NEAR(burstiness.jobs.RatioAtPercentile(50), 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace swim

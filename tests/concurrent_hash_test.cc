#include "common/concurrent_hash.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/interner.h"
#include "common/random.h"
#include "trace/trace.h"

namespace swim {
namespace {

// Every test here runs its concurrent phases against a mutex-protected
// std::unordered_map oracle updated by the same threads. For the final
// states to be comparable despite unordered interleavings, the ops are
// chosen order-independent: values are a pure function of the key, and
// erases only touch keys their thread owns. The suite runs under the TSan
// CI job, which is the real referee for the latch protocols.

constexpr int kThreads = 4;

uint64_t ValueFor(uint64_t key) { return key * 0x9e3779b97f4a7c15ull + 1; }

/// Zipf-ish skew without float quantile tables: cubing a uniform variate
/// concentrates the mass near 0 — enough contention to hammer hot shards.
uint64_t SkewedKey(Pcg32& rng, uint64_t domain) {
  double u = static_cast<double>(rng.NextBounded(1u << 20)) /
             static_cast<double>(1u << 20);
  return static_cast<uint64_t>(u * u * u * static_cast<double>(domain));
}

struct LockedOracle {
  std::mutex mu;
  std::unordered_map<uint64_t, uint64_t> map;

  void Upsert(uint64_t key, uint64_t value) {
    std::lock_guard<std::mutex> lock(mu);
    map[key] = value;
  }
  void Erase(uint64_t key) {
    std::lock_guard<std::mutex> lock(mu);
    map.erase(key);
  }
};

void ExpectMatchesOracle(const ConcurrentHashMap<uint64_t, uint64_t>& map,
                         const LockedOracle& oracle) {
  ASSERT_EQ(map.size(), oracle.map.size());
  size_t visited = 0;
  map.ForEach([&](uint64_t key, uint64_t value) {
    auto it = oracle.map.find(key);
    ASSERT_NE(it, oracle.map.end()) << key;
    EXPECT_EQ(value, it->second);
    ++visited;
  });
  EXPECT_EQ(visited, oracle.map.size());
}

TEST(ShardLatchTest, WriterExcludesWritersAndReaders) {
  ShardLatch latch;
  uint64_t guarded = 0;  // non-atomic on purpose: the latch is the guard
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        if (i % 4 == 0) {
          ExclusiveLatchGuard guard(latch);
          ++guarded;
        } else {
          SharedLatchGuard guard(latch);
          // Readers may only ever observe a quiescent value; a torn or
          // mid-increment read would trip TSan before it trips this.
          if (guarded > static_cast<uint64_t>(kThreads) * 20000) {
            failed.store(true);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(guarded, static_cast<uint64_t>(kThreads) * (20000 / 4));
}

// Single-threaded API contract against a plain oracle, miss-heavy mix
// included (erase of absent keys, Find of never-inserted keys).
TEST(ConcurrentHashMapTest, SingleThreadMatchesOracle) {
  ConcurrentHashMap<uint64_t, uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> oracle;
  Pcg32 rng(42, /*stream=*/1);
  for (int step = 0; step < 50000; ++step) {
    uint64_t key = rng.NextBounded(4096);  // half the probes miss
    switch (rng.NextBounded(4)) {
      case 0: {
        uint64_t value = rng();
        EXPECT_EQ(map.InsertOrAssign(key, value), oracle.count(key) == 0);
        oracle[key] = value;
        break;
      }
      case 1:
        EXPECT_EQ(map.Erase(key), oracle.erase(key));
        break;
      case 2: {
        uint64_t out = 0;
        bool found = map.Find(key, &out);
        auto it = oracle.find(key);
        ASSERT_EQ(found, it != oracle.end());
        if (found) EXPECT_EQ(out, it->second);
        break;
      }
      default: {
        auto [value, inserted] = map.GetOrEmplace(
            key, [&] { return std::make_pair(key, ValueFor(key)); });
        auto it = oracle.find(key);
        EXPECT_EQ(inserted, it == oracle.end());
        if (it != oracle.end()) {
          EXPECT_EQ(value, it->second);
        } else {
          EXPECT_EQ(value, ValueFor(key));
          oracle[key] = ValueFor(key);
        }
      }
    }
    ASSERT_EQ(map.size(), oracle.size());
  }
}

// Contended Zipf upserts: all threads hammer the same skewed key stream
// with GetOrEmplace; make() must run exactly once per distinct key.
TEST(ConcurrentHashMapTest, ContendedZipfGetOrEmplace) {
  ConcurrentHashMap<uint64_t, uint64_t> map;
  LockedOracle oracle;
  std::atomic<size_t> insertions{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Pcg32 rng(2012, /*stream=*/static_cast<uint64_t>(t));
      for (int i = 0; i < 30000; ++i) {
        uint64_t key = SkewedKey(rng, 5000);
        auto [value, inserted] = map.GetOrEmplace(
            key, [&] { return std::make_pair(key, ValueFor(key)); });
        EXPECT_EQ(value, ValueFor(key));
        if (inserted) insertions.fetch_add(1, std::memory_order_relaxed);
        oracle.Upsert(key, ValueFor(key));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(insertions.load(), oracle.map.size());
  ExpectMatchesOracle(map, oracle);
}

// Read-mostly mix over a pre-populated table: 15/16 lookups, rare inserts
// of thread-owned keys. Hits must always return the key-derived value —
// a torn value or a transiently absent pre-populated key fails loudly.
TEST(ConcurrentHashMapTest, ReadMostlyMix) {
  ConcurrentHashMap<uint64_t, uint64_t> map;
  LockedOracle oracle;
  constexpr uint64_t kPrepopulated = 20000;
  map.Reserve(kPrepopulated + kThreads * 2000);
  for (uint64_t key = 0; key < kPrepopulated; ++key) {
    map.InsertOrAssign(key, ValueFor(key));
    oracle.map[key] = ValueFor(key);
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Pcg32 rng(7, /*stream=*/static_cast<uint64_t>(t));
      uint64_t next_own = kPrepopulated + static_cast<uint64_t>(t) * 1u << 20;
      for (int i = 0; i < 32000; ++i) {
        if (rng.NextBounded(16) == 0) {
          uint64_t key = next_own++;
          EXPECT_TRUE(map.InsertOrAssign(key, ValueFor(key)));
          oracle.Upsert(key, ValueFor(key));
        } else {
          uint64_t key = SkewedKey(rng, kPrepopulated);
          uint64_t out = 0;
          ASSERT_TRUE(map.Find(key, &out)) << key;
          EXPECT_EQ(out, ValueFor(key));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ExpectMatchesOracle(map, oracle);
}

// Insert-heavy with erase churn: each thread owns a key range, inserts it
// all, then erases a deterministic subset — exercising shard rehashes and
// tombstone reuse under concurrency from the other shards' writers.
TEST(ConcurrentHashMapTest, InsertHeavyWithOwnedErase) {
  ConcurrentHashMap<uint64_t, uint64_t> map;
  LockedOracle oracle;
  constexpr uint64_t kPerThread = 40000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t base = static_cast<uint64_t>(t) * kPerThread;
      for (uint64_t k = 0; k < kPerThread; ++k) {
        uint64_t key = base + k;
        map.InsertOrAssign(key, ValueFor(key));
        oracle.Upsert(key, ValueFor(key));
        if (k % 3 == 0) {  // churn: erase every third key right away
          EXPECT_EQ(map.Erase(key), 1u);
          oracle.Erase(key);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ExpectMatchesOracle(map, oracle);
}

// Miss-heavy lookups racing writers: readers probe keys that are NEVER
// inserted (must always miss) plus keys being inserted concurrently (must
// miss or return the exact final value — nothing in between).
TEST(ConcurrentHashMapTest, MissHeavyLookupsDuringInserts) {
  ConcurrentHashMap<uint64_t, uint64_t> map;
  constexpr uint64_t kWriteDomain = 30000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads - 1; ++t) {
    readers.emplace_back([&, t] {
      Pcg32 rng(99, /*stream=*/static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t key = rng.NextBounded(2 * kWriteDomain);
        uint64_t out = 0;
        bool found = map.Find(key, &out);
        if (key >= kWriteDomain) {
          EXPECT_FALSE(found) << key;  // never written by anyone
        } else if (found) {
          EXPECT_EQ(out, ValueFor(key));
        }
      }
    });
  }
  for (uint64_t key = 0; key < kWriteDomain; ++key) {
    map.InsertOrAssign(key, ValueFor(key));
  }
  stop.store(true, std::memory_order_release);
  for (auto& thread : readers) thread.join();
  EXPECT_EQ(map.size(), kWriteDomain);
}

// ConcurrentCounter vs serial accumulation: the same deterministic
// per-thread streams summed serially must equal the concurrent totals.
TEST(ConcurrentCounterTest, MatchesSerialSums) {
  constexpr uint64_t kDomain = 4000;
  ConcurrentCounter<uint32_t> counter(kDomain);
  std::vector<uint64_t> expected(kDomain, 0);
  for (int t = 0; t < kThreads; ++t) {
    Pcg32 rng(5, /*stream=*/static_cast<uint64_t>(t));
    for (int i = 0; i < 60000; ++i) {
      ++expected[SkewedKey(rng, kDomain)];
    }
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Pcg32 rng(5, /*stream=*/static_cast<uint64_t>(t));
      for (int i = 0; i < 60000; ++i) {
        counter.Add(static_cast<uint32_t>(SkewedKey(rng, kDomain)));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(counter.Overflowed());  // reserved for the full population
  uint64_t total = 0;
  size_t distinct = 0;
  for (uint32_t key = 0; key < kDomain; ++key) {
    EXPECT_EQ(counter.Count(key), expected[key]) << key;
    total += expected[key];
    distinct += expected[key] > 0 ? 1 : 0;
  }
  EXPECT_EQ(counter.Distinct(), distinct);
  uint64_t foreach_total = 0;
  counter.ForEach([&](uint32_t, uint64_t count) { foreach_total += count; });
  EXPECT_EQ(foreach_total, total);
}

// Under-reservation must degrade to the overflow map, not lose counts.
TEST(ConcurrentCounterTest, OverflowStaysExact) {
  ConcurrentCounter<uint32_t> counter(8);  // tiny table, big population
  constexpr uint32_t kDomain = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint32_t key = 0; key < kDomain; ++key) counter.Add(key);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_TRUE(counter.Overflowed());
  EXPECT_EQ(counter.Distinct(), kDomain);
  for (uint32_t key = 0; key < kDomain; ++key) {
    ASSERT_EQ(counter.Count(key), static_cast<uint64_t>(kThreads)) << key;
  }
}

// ShardedInterner: concurrent interning of overlapping string streams
// yields one dense provisional id space covering exactly the distinct set,
// with ids stable on re-intern and views valid afterwards.
TEST(ShardedInternerTest, ConcurrentInternYieldsDenseStableIds) {
  ShardedInterner interner(2000);
  constexpr uint64_t kDomain = 1500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Pcg32 rng(31, /*stream=*/static_cast<uint64_t>(t));
      for (int i = 0; i < 20000; ++i) {
        uint64_t n = SkewedKey(rng, kDomain);
        std::string text = "hdfs://data/part-" + std::to_string(n);
        uint32_t id = interner.Intern(text);
        // Same string must map to the same id on the spot.
        ASSERT_EQ(interner.Intern(text), id);
        ASSERT_LT(id, kDomain);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::vector<std::string_view> views = interner.ViewsByProvisionalId();
  ASSERT_EQ(views.size(), interner.size());
  FlatHashSet<std::string_view> distinct;
  for (uint32_t id = 0; id < views.size(); ++id) {
    EXPECT_EQ(interner.Intern(views[id]), id);  // round-trip
    distinct.insert(views[id]);
  }
  EXPECT_EQ(distinct.size(), views.size());  // ids are a bijection
}

// End-to-end determinism of the tentpole wiring: a trace big enough for
// the parallel in-place index build must produce byte-identical id columns
// and interner contents at 1 lane (serial path) and 8 lanes (concurrent
// ShardedInterner + canonical post-pass).
TEST(TraceParallelIndexTest, ParallelIndexIdenticalToSerial) {
  trace::Trace serial;
  Pcg32 rng(2012, /*stream=*/9);
  for (uint64_t i = 0; i < 20000; ++i) {  // above kParallelIndexThreshold
    trace::JobRecord job;
    job.job_id = i + 1;
    job.submit_time = static_cast<double>(rng.NextBounded(1000000));
    job.input_bytes = 1e6;
    job.name = "Pipeline" + std::to_string(SkewedKey(rng, 200));
    if (rng.NextBernoulli(0.85)) {
      job.input_path = "data/in" + std::to_string(SkewedKey(rng, 3000));
    }
    if (rng.NextBernoulli(0.6)) {
      job.output_path =
          rng.NextBernoulli(0.3)
              ? "data/in" + std::to_string(SkewedKey(rng, 3000))
              : "data/out" + std::to_string(SkewedKey(rng, 3000));
    }
    serial.AddJob(std::move(job));
  }
  trace::Trace parallel = serial;  // copy drops lazy index state
  serial.WarmIndexes(/*max_parallelism=*/1);
  parallel.WarmIndexes(/*max_parallelism=*/8);

  EXPECT_EQ(serial.input_path_ids(), parallel.input_path_ids());
  EXPECT_EQ(serial.output_path_ids(), parallel.output_path_ids());
  EXPECT_EQ(serial.name_ids(), parallel.name_ids());
  ASSERT_EQ(serial.path_interner().size(), parallel.path_interner().size());
  for (uint32_t id = 0; id < serial.path_interner().size(); ++id) {
    ASSERT_EQ(serial.path_interner().NameOf(id),
              parallel.path_interner().NameOf(id));
  }
  ASSERT_EQ(serial.name_interner().size(), parallel.name_interner().size());
  for (uint32_t id = 0; id < serial.name_interner().size(); ++id) {
    ASSERT_EQ(serial.name_interner().NameOf(id),
              parallel.name_interner().NameOf(id));
  }
}

}  // namespace
}  // namespace swim

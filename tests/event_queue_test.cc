// Property tests for the replay engine's event queues (sim/event_queue.h):
// the calendar queue and the 4-ary heap are driven with the same event
// streams as the retired std::priority_queue (the golden oracle) and must
// produce the exact same pop order - including FIFO order within
// same-timestamp bursts, which is what the replay engine's determinism
// contract hangs on.
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "sim/event_queue.h"

namespace swim::sim {
namespace {

struct TestEvent {
  double time = 0.0;
  uint64_t seq = 0;
  uint32_t payload = 0;
};

template <typename Queue>
std::vector<TestEvent> Drain(Queue& queue) {
  std::vector<TestEvent> order;
  order.reserve(queue.size());
  while (!queue.empty()) order.push_back(queue.Pop());
  return order;
}

void ExpectSameOrder(const std::vector<TestEvent>& got,
                     const std::vector<TestEvent>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].seq, want[i].seq) << "divergence at pop " << i;
    ASSERT_EQ(got[i].time, want[i].time) << "divergence at pop " << i;
    ASSERT_EQ(got[i].payload, want[i].payload) << "divergence at pop " << i;
  }
}

/// Replay-shaped stream: the queue is drained in time order while new
/// events land at or after the current simulated time (discrete-event
/// causality), with occasional same-timestamp bursts.
template <typename MakeTime>
void RunInterleavedAgainstOracle(size_t total_events, uint64_t seed,
                                 MakeTime&& next_time) {
  Pcg32 rng(seed, /*stream=*/0x0e51);
  HeapEventQueue<TestEvent> oracle;
  CalendarEventQueue<TestEvent> calendar;
  DaryEventHeap<TestEvent> dary;
  uint64_t seq = 0;
  double now = 0.0;
  size_t pushed = 0;
  std::vector<TestEvent> oracle_order, calendar_order, dary_order;
  while (pushed < total_events || !oracle.empty()) {
    bool push = pushed < total_events &&
                (oracle.empty() || rng.NextBernoulli(0.55));
    if (push) {
      // Bursts: with probability 1/4 the event reuses the current time
      // exactly, otherwise it lands strictly in the future.
      double time = rng.NextBernoulli(0.25) ? now : next_time(rng, now);
      TestEvent event{time, seq, static_cast<uint32_t>(seq * 2654435761u)};
      ++seq;
      ++pushed;
      oracle.Push(event);
      calendar.Push(event);
      dary.Push(event);
    } else {
      ASSERT_EQ(oracle.size(), calendar.size());
      ASSERT_EQ(oracle.size(), dary.size());
      TestEvent expected = oracle.Pop();
      now = expected.time;  // simulated clock advances to the pop
      oracle_order.push_back(expected);
      calendar_order.push_back(calendar.Pop());
      dary_order.push_back(dary.Pop());
    }
  }
  ExpectSameOrder(calendar_order, oracle_order);
  ExpectSameOrder(dary_order, oracle_order);
}

TEST(EventQueueTest, HundredThousandRandomEventsMatchOracle) {
  RunInterleavedAgainstOracle(100000, 20120417, [](Pcg32& rng, double now) {
    return now + rng.NextDouble(0.0, 500.0);
  });
}

TEST(EventQueueTest, SameTimestampBurstsPopInFifoOrder) {
  // Heavy bursts: only ~200 distinct timestamps across 100k events, so
  // hundreds of events share each time and FIFO (seq) order carries the
  // whole ordering. Integer-valued times also maximize exact collisions.
  RunInterleavedAgainstOracle(100000, 19880204, [](Pcg32& rng, double now) {
    return now + static_cast<double>(rng.NextInt(1, 3));
  });
}

TEST(EventQueueTest, IdleGapsBetweenClusters) {
  // Clustered arrivals separated by gaps up to a simulated month - the
  // pattern that forces the calendar queue's cursor jump. Also crosses
  // the heap<->calendar migration thresholds repeatedly because the queue
  // drains nearly empty between clusters.
  RunInterleavedAgainstOracle(50000, 6021023, [](Pcg32& rng, double now) {
    if (rng.NextBernoulli(0.01)) {
      return now + rng.NextDouble(1e5, 30.0 * 86400.0);  // gap
    }
    return now + rng.NextDouble(0.0, 60.0);  // cluster
  });
}

TEST(EventQueueTest, MonotonePushThenFullDrain) {
  // Pure arrival-scan shape: everything pushed up front in (time, seq)
  // order (like the engine seeding one kArrival per job from a
  // submit-sorted trace), then drained.
  HeapEventQueue<TestEvent> oracle;
  CalendarEventQueue<TestEvent> calendar;
  Pcg32 rng(404, /*stream=*/0x0e52);
  double time = 0.0;
  for (uint64_t i = 0; i < 20000; ++i) {
    time += rng.NextDouble(0.0, 10.0);
    TestEvent event{time, i, static_cast<uint32_t>(i)};
    oracle.Push(event);
    calendar.Push(event);
  }
  std::vector<TestEvent> oracle_order = Drain(oracle);
  std::vector<TestEvent> calendar_order = Drain(calendar);
  ExpectSameOrder(calendar_order, oracle_order);
}

TEST(EventQueueTest, TinyQueueStaysCorrectAcrossModeBoundary) {
  // Push/pop around the heap<->calendar hysteresis thresholds.
  HeapEventQueue<TestEvent> oracle;
  CalendarEventQueue<TestEvent> calendar;
  Pcg32 rng(7, /*stream=*/0x0e53);
  uint64_t seq = 0;
  double now = 0.0;
  for (int round = 0; round < 200; ++round) {
    size_t burst = static_cast<size_t>(rng.NextInt(1, 150));  // straddles 48/96
    for (size_t i = 0; i < burst; ++i) {
      TestEvent event{now + rng.NextDouble(0.0, 100.0), seq,
                      static_cast<uint32_t>(seq)};
      ++seq;
      oracle.Push(event);
      calendar.Push(event);
    }
    size_t pops = static_cast<size_t>(
        rng.NextInt(1, static_cast<int64_t>(burst)));
    for (size_t i = 0; i < pops && !oracle.empty(); ++i) {
      TestEvent expected = oracle.Pop();
      TestEvent got = calendar.Pop();
      ASSERT_EQ(got.seq, expected.seq);
      now = expected.time;
    }
  }
  std::vector<TestEvent> oracle_order = Drain(oracle);
  std::vector<TestEvent> calendar_order = Drain(calendar);
  ExpectSameOrder(calendar_order, oracle_order);
}

}  // namespace
}  // namespace swim::sim

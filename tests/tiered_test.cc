#include <string>

#include "common/units.h"
#include "gtest/gtest.h"
#include "storage/tiered.h"

namespace swim::storage {
namespace {

FileAccess Read(const std::string& path, double bytes, double time = 0) {
  return FileAccess{time, path, bytes, AccessKind::kRead, 0};
}

TEST(MakeCacheTest, BuildsEveryPolicy) {
  for (const char* policy :
       {"lru", "LFU", "fifo", "size-threshold", "unbounded"}) {
    auto cache = MakeCache(policy, 1e9);
    ASSERT_TRUE(cache.ok()) << policy;
    EXPECT_FALSE((*cache)->name().empty());
  }
}

TEST(MakeCacheTest, RejectsBadInputs) {
  EXPECT_FALSE(MakeCache("arc", 1e9).ok());
  EXPECT_FALSE(MakeCache("lru", 0).ok());
  EXPECT_FALSE(MakeCache("size-threshold", 1e9, -1).ok());
}

TEST(TieredTest, AllHitsRunAtMemorySpeed) {
  TierConfig config;
  config.memory_capacity_bytes = 1e9;
  std::vector<FileAccess> stream;
  // Warm then re-read: first read misses, next 9 hit.
  for (int i = 0; i < 10; ++i) stream.push_back(Read("hot", 100 * kMB, i));
  auto stats = SimulateTieredReads(stream, config);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->cache.hits, 9u);
  // 9 memory reads at 3 GB/s (0.033 s each) + 1 disk read (1.01 s).
  double expected =
      9 * (100 * kMB / config.memory_bandwidth) +
      (config.disk_seek_seconds + 100 * kMB / config.disk_bandwidth);
  EXPECT_NEAR(stats->read_seconds, expected, 1e-9);
  EXPECT_GT(stats->Speedup(), 5.0);
}

TEST(TieredTest, ColdStreamMatchesDiskOnly) {
  TierConfig config;
  std::vector<FileAccess> stream;
  for (int i = 0; i < 20; ++i) {
    stream.push_back(Read("f" + std::to_string(i), 10 * kMB, i));
  }
  auto stats = SimulateTieredReads(stream, config);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->read_seconds, stats->disk_only_seconds);
  EXPECT_DOUBLE_EQ(stats->Speedup(), 1.0);
}

TEST(TieredTest, WritesWarmTheMemoryTier) {
  TierConfig config;
  std::vector<FileAccess> stream = {
      FileAccess{0, "out", 50 * kMB, AccessKind::kWrite, 1},
      Read("out", 50 * kMB, 10),
  };
  auto stats = SimulateTieredReads(stream, config);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->cache.hits, 1u);
  EXPECT_LT(stats->read_seconds, stats->disk_only_seconds);
}

TEST(TieredTest, SizeThresholdSkipsGiantFiles) {
  TierConfig config;
  config.policy = "size-threshold";
  config.size_threshold_bytes = 1 * kGB;
  std::vector<FileAccess> stream;
  for (int i = 0; i < 5; ++i) stream.push_back(Read("giant", 1 * kTB, i));
  for (int i = 0; i < 5; ++i) stream.push_back(Read("small", 1 * kMB, 10 + i));
  auto stats = SimulateTieredReads(stream, config);
  ASSERT_TRUE(stats.ok());
  // Giant never admitted (4 would-be hits forgone), small hits 4 times.
  EXPECT_EQ(stats->cache.hits, 4u);
  EXPECT_GE(stats->cache.admission_rejections, 5u);
}

TEST(TieredTest, RejectsBadConfig) {
  TierConfig config;
  config.memory_bandwidth = 0;
  EXPECT_FALSE(SimulateTieredReads({}, config).ok());
  config = {};
  config.disk_seek_seconds = -1;
  EXPECT_FALSE(SimulateTieredReads({}, config).ok());
  config = {};
  config.policy = "bogus";
  EXPECT_FALSE(SimulateTieredReads({}, config).ok());
}

}  // namespace
}  // namespace swim::storage

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "stats/burstiness.h"
#include "stats/fourier.h"

namespace swim::stats {
namespace {

std::vector<double> Sinusoid(size_t n, double period, double offset = 10.0,
                             double amplitude = 1.0) {
  std::vector<double> series(n);
  for (size_t t = 0; t < n; ++t) {
    series[t] = offset + amplitude * std::sin(2.0 * std::numbers::pi *
                                              static_cast<double>(t) / period);
  }
  return series;
}

// Diurnal-ish signal plus deterministic noise, so the spectrum has power at
// every frequency (a harsher golden test than a pure tone).
std::vector<double> NoisySeries(size_t n, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<double> series = Sinusoid(n, 24.0, 5.0, 2.0);
  for (double& v : series) v += rng.NextDouble(-0.5, 0.5);
  return series;
}

// --- Fourier -------------------------------------------------------------

TEST(FourierTest, DetectsDailyPeriodInHourlyData) {
  // One week of hourly samples with a 24-hour cycle.
  auto series = Sinusoid(168, 24.0);
  SpectralPeak peak = DominantPeriod(series);
  EXPECT_NEAR(peak.period, 24.0, 0.5);
  EXPECT_GT(peak.power_fraction, 0.9);
}

TEST(FourierTest, DetectsWeeklyPeriod) {
  auto series = Sinusoid(24 * 28, 168.0);
  SpectralPeak peak = DominantPeriod(series);
  EXPECT_NEAR(peak.period, 168.0, 1.0);
}

TEST(FourierTest, ShortSeriesYieldsNothing) {
  EXPECT_EQ(Periodogram({1, 2, 3}).size(), 0u);
  EXPECT_EQ(DominantPeriod({1, 2}).power, 0.0);
}

TEST(FourierTest, ConstantSeriesHasNoPower) {
  std::vector<double> flat(100, 7.0);
  for (const auto& peak : Periodogram(flat)) {
    EXPECT_NEAR(peak.power, 0.0, 1e-9);
  }
}

TEST(FourierTest, PeriodStrengthSelective) {
  auto series = Sinusoid(168, 24.0);
  EXPECT_GT(PeriodStrength(series, 24.0), 0.9);
  EXPECT_LT(PeriodStrength(series, 80.0, 2.0), 0.05);
}

TEST(FourierTest, PowerFractionsSumToOne) {
  auto series = Sinusoid(96, 24.0, 5.0, 2.0);
  double total = 0.0;
  for (const auto& peak : Periodogram(series)) total += peak.power_fraction;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// Golden test: the FFT periodogram must agree with the O(n^2) direct DFT it
// replaced to within 1e-9 relative power at every spectral line.
void ExpectMatchesNaive(const std::vector<double>& series) {
  auto fast = Periodogram(series);
  auto naive = NaivePeriodogram(series);
  ASSERT_EQ(fast.size(), naive.size());
  double total = 0.0;
  for (const auto& peak : naive) total += peak.power;
  const double tolerance = 1e-9 * std::max(total, 1.0);
  for (size_t k = 0; k < fast.size(); ++k) {
    EXPECT_DOUBLE_EQ(fast[k].period, naive[k].period);
    EXPECT_NEAR(fast[k].power, naive[k].power, tolerance);
    EXPECT_NEAR(fast[k].power_fraction, naive[k].power_fraction, 1e-9);
  }
}

TEST(FourierTest, FftPeriodogramMatchesNaiveDft) {
  // Power-of-two (radix-2 path), prime (Bluestein path), short, and the
  // week-of-hours composite length the analysis pipeline actually uses.
  for (size_t n : {8, 64, 97, 168, 251, 256}) {
    SCOPED_TRACE(n);
    ExpectMatchesNaive(NoisySeries(n, 17 + n));
  }
}

TEST(FourierTest, FftInverseRoundtrip) {
  for (size_t n : {16, 100, 127}) {
    SCOPED_TRACE(n);
    Pcg32 rng(n);
    std::vector<std::complex<double>> data(n);
    for (auto& c : data) {
      c = {rng.NextDouble(-1.0, 1.0), rng.NextDouble(-1.0, 1.0)};
    }
    auto original = data;
    Fft(data);
    InverseFft(data);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(data[i].real(), original[i].real(), 1e-12);
      EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-12);
    }
  }
}

TEST(FourierTest, FftSingleToneConcentratesPower) {
  // A pure complex exponential at bin 5 of a power-of-two transform must
  // land all its energy in exactly that bin.
  const size_t n = 64;
  std::vector<std::complex<double>> data(n);
  for (size_t t = 0; t < n; ++t) {
    double angle = 2.0 * std::numbers::pi * 5.0 * static_cast<double>(t) /
                   static_cast<double>(n);
    data[t] = std::polar(1.0, angle);
  }
  Fft(data);
  for (size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(data[k]), k == 5 ? static_cast<double>(n) : 0.0,
                1e-9);
  }
}

// --- Burstiness ------------------------------------------------------------

TEST(BurstinessTest, ConstantSeriesIsVertical) {
  BurstinessProfile profile(std::vector<double>(100, 4.0));
  EXPECT_DOUBLE_EQ(profile.PeakToMedian(), 1.0);
  EXPECT_DOUBLE_EQ(profile.RatioAtPercentile(10), 1.0);
}

TEST(BurstinessTest, KnownPeakToMedian) {
  // 99 hours at rate 2, 1 hour at rate 50: median 2, peak 50.
  std::vector<double> series(99, 2.0);
  series.push_back(50.0);
  BurstinessProfile profile(series);
  EXPECT_NEAR(profile.PeakToMedian(), 25.0, 1e-9);
}

TEST(BurstinessTest, SineReferencesMatchPaper) {
  // "sine + 2": min-max range (2) equals the mean (2) -> peak/median = 1.5.
  BurstinessProfile low(SineReferenceSeries(2.0));
  EXPECT_NEAR(low.PeakToMedian(), 1.5, 0.02);
  // "sine + 20": range is 10% of the mean -> peak/median ~ 1.05.
  BurstinessProfile high(SineReferenceSeries(20.0));
  EXPECT_NEAR(high.PeakToMedian(), 1.05, 0.005);
}

TEST(BurstinessTest, BurstierSeriesHasHigherRatios) {
  std::vector<double> calm = SineReferenceSeries(20.0);
  std::vector<double> bursty(168, 1.0);
  for (size_t i = 0; i < bursty.size(); i += 24) bursty[i] = 100.0;
  BurstinessProfile calm_profile(calm);
  BurstinessProfile bursty_profile(bursty);
  EXPECT_GT(bursty_profile.PeakToMedian(), calm_profile.PeakToMedian());
  EXPECT_GT(bursty_profile.P99ToMedian(), calm_profile.P99ToMedian());
}

TEST(BurstinessTest, ZeroMedianIsDegenerate) {
  std::vector<double> mostly_zero(100, 0.0);
  mostly_zero[0] = 5.0;
  BurstinessProfile profile(mostly_zero);
  EXPECT_TRUE(profile.empty());
  EXPECT_EQ(profile.PeakToMedian(), 0.0);
}

TEST(BurstinessTest, CurveIsMonotoneWith101Points) {
  std::vector<double> series;
  for (int i = 1; i <= 200; ++i) series.push_back(static_cast<double>(i));
  BurstinessProfile profile(series);
  auto curve = profile.Curve();
  ASSERT_EQ(curve.size(), 101u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
  }
  EXPECT_NEAR(curve[50], 1.0, 0.02);  // median normalizes to ~1
}

}  // namespace
}  // namespace swim::stats

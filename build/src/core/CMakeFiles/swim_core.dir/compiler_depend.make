# Empty compiler generated dependencies file for swim_core.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis/compute.cc" "src/core/CMakeFiles/swim_core.dir/analysis/compute.cc.o" "gcc" "src/core/CMakeFiles/swim_core.dir/analysis/compute.cc.o.d"
  "/root/repo/src/core/analysis/data_access.cc" "src/core/CMakeFiles/swim_core.dir/analysis/data_access.cc.o" "gcc" "src/core/CMakeFiles/swim_core.dir/analysis/data_access.cc.o.d"
  "/root/repo/src/core/analysis/diversity.cc" "src/core/CMakeFiles/swim_core.dir/analysis/diversity.cc.o" "gcc" "src/core/CMakeFiles/swim_core.dir/analysis/diversity.cc.o.d"
  "/root/repo/src/core/analysis/temporal.cc" "src/core/CMakeFiles/swim_core.dir/analysis/temporal.cc.o" "gcc" "src/core/CMakeFiles/swim_core.dir/analysis/temporal.cc.o.d"
  "/root/repo/src/core/analysis/workload_report.cc" "src/core/CMakeFiles/swim_core.dir/analysis/workload_report.cc.o" "gcc" "src/core/CMakeFiles/swim_core.dir/analysis/workload_report.cc.o.d"
  "/root/repo/src/core/synth/fidelity.cc" "src/core/CMakeFiles/swim_core.dir/synth/fidelity.cc.o" "gcc" "src/core/CMakeFiles/swim_core.dir/synth/fidelity.cc.o.d"
  "/root/repo/src/core/synth/scale_down.cc" "src/core/CMakeFiles/swim_core.dir/synth/scale_down.cc.o" "gcc" "src/core/CMakeFiles/swim_core.dir/synth/scale_down.cc.o.d"
  "/root/repo/src/core/synth/synthesizer.cc" "src/core/CMakeFiles/swim_core.dir/synth/synthesizer.cc.o" "gcc" "src/core/CMakeFiles/swim_core.dir/synth/synthesizer.cc.o.d"
  "/root/repo/src/core/synth/workload_model.cc" "src/core/CMakeFiles/swim_core.dir/synth/workload_model.cc.o" "gcc" "src/core/CMakeFiles/swim_core.dir/synth/workload_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/swim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/swim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/swim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/swim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

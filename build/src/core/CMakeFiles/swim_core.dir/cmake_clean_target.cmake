file(REMOVE_RECURSE
  "libswim_core.a"
)

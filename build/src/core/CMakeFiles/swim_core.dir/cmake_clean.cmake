file(REMOVE_RECURSE
  "CMakeFiles/swim_core.dir/analysis/compute.cc.o"
  "CMakeFiles/swim_core.dir/analysis/compute.cc.o.d"
  "CMakeFiles/swim_core.dir/analysis/data_access.cc.o"
  "CMakeFiles/swim_core.dir/analysis/data_access.cc.o.d"
  "CMakeFiles/swim_core.dir/analysis/diversity.cc.o"
  "CMakeFiles/swim_core.dir/analysis/diversity.cc.o.d"
  "CMakeFiles/swim_core.dir/analysis/temporal.cc.o"
  "CMakeFiles/swim_core.dir/analysis/temporal.cc.o.d"
  "CMakeFiles/swim_core.dir/analysis/workload_report.cc.o"
  "CMakeFiles/swim_core.dir/analysis/workload_report.cc.o.d"
  "CMakeFiles/swim_core.dir/synth/fidelity.cc.o"
  "CMakeFiles/swim_core.dir/synth/fidelity.cc.o.d"
  "CMakeFiles/swim_core.dir/synth/scale_down.cc.o"
  "CMakeFiles/swim_core.dir/synth/scale_down.cc.o.d"
  "CMakeFiles/swim_core.dir/synth/synthesizer.cc.o"
  "CMakeFiles/swim_core.dir/synth/synthesizer.cc.o.d"
  "CMakeFiles/swim_core.dir/synth/workload_model.cc.o"
  "CMakeFiles/swim_core.dir/synth/workload_model.cc.o.d"
  "libswim_core.a"
  "libswim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/swim_workloads.dir/file_population.cc.o"
  "CMakeFiles/swim_workloads.dir/file_population.cc.o.d"
  "CMakeFiles/swim_workloads.dir/name_generator.cc.o"
  "CMakeFiles/swim_workloads.dir/name_generator.cc.o.d"
  "CMakeFiles/swim_workloads.dir/paper_workloads.cc.o"
  "CMakeFiles/swim_workloads.dir/paper_workloads.cc.o.d"
  "CMakeFiles/swim_workloads.dir/spec_io.cc.o"
  "CMakeFiles/swim_workloads.dir/spec_io.cc.o.d"
  "CMakeFiles/swim_workloads.dir/trace_generator.cc.o"
  "CMakeFiles/swim_workloads.dir/trace_generator.cc.o.d"
  "CMakeFiles/swim_workloads.dir/workload_spec.cc.o"
  "CMakeFiles/swim_workloads.dir/workload_spec.cc.o.d"
  "libswim_workloads.a"
  "libswim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/file_population.cc" "src/workloads/CMakeFiles/swim_workloads.dir/file_population.cc.o" "gcc" "src/workloads/CMakeFiles/swim_workloads.dir/file_population.cc.o.d"
  "/root/repo/src/workloads/name_generator.cc" "src/workloads/CMakeFiles/swim_workloads.dir/name_generator.cc.o" "gcc" "src/workloads/CMakeFiles/swim_workloads.dir/name_generator.cc.o.d"
  "/root/repo/src/workloads/paper_workloads.cc" "src/workloads/CMakeFiles/swim_workloads.dir/paper_workloads.cc.o" "gcc" "src/workloads/CMakeFiles/swim_workloads.dir/paper_workloads.cc.o.d"
  "/root/repo/src/workloads/spec_io.cc" "src/workloads/CMakeFiles/swim_workloads.dir/spec_io.cc.o" "gcc" "src/workloads/CMakeFiles/swim_workloads.dir/spec_io.cc.o.d"
  "/root/repo/src/workloads/trace_generator.cc" "src/workloads/CMakeFiles/swim_workloads.dir/trace_generator.cc.o" "gcc" "src/workloads/CMakeFiles/swim_workloads.dir/trace_generator.cc.o.d"
  "/root/repo/src/workloads/workload_spec.cc" "src/workloads/CMakeFiles/swim_workloads.dir/workload_spec.cc.o" "gcc" "src/workloads/CMakeFiles/swim_workloads.dir/workload_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/swim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/swim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libswim_workloads.a"
)

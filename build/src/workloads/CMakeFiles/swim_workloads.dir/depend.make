# Empty dependencies file for swim_workloads.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/access_stream.cc" "src/storage/CMakeFiles/swim_storage.dir/access_stream.cc.o" "gcc" "src/storage/CMakeFiles/swim_storage.dir/access_stream.cc.o.d"
  "/root/repo/src/storage/cache.cc" "src/storage/CMakeFiles/swim_storage.dir/cache.cc.o" "gcc" "src/storage/CMakeFiles/swim_storage.dir/cache.cc.o.d"
  "/root/repo/src/storage/hdfs.cc" "src/storage/CMakeFiles/swim_storage.dir/hdfs.cc.o" "gcc" "src/storage/CMakeFiles/swim_storage.dir/hdfs.cc.o.d"
  "/root/repo/src/storage/tiered.cc" "src/storage/CMakeFiles/swim_storage.dir/tiered.cc.o" "gcc" "src/storage/CMakeFiles/swim_storage.dir/tiered.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/swim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/swim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

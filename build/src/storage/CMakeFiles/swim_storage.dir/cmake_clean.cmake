file(REMOVE_RECURSE
  "CMakeFiles/swim_storage.dir/access_stream.cc.o"
  "CMakeFiles/swim_storage.dir/access_stream.cc.o.d"
  "CMakeFiles/swim_storage.dir/cache.cc.o"
  "CMakeFiles/swim_storage.dir/cache.cc.o.d"
  "CMakeFiles/swim_storage.dir/hdfs.cc.o"
  "CMakeFiles/swim_storage.dir/hdfs.cc.o.d"
  "CMakeFiles/swim_storage.dir/tiered.cc.o"
  "CMakeFiles/swim_storage.dir/tiered.cc.o.d"
  "libswim_storage.a"
  "libswim_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swim_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libswim_storage.a"
)

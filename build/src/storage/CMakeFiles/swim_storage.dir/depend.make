# Empty dependencies file for swim_storage.
# This may be replaced when dependencies are built.

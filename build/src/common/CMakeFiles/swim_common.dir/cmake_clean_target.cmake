file(REMOVE_RECURSE
  "libswim_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/swim_common.dir/logging.cc.o"
  "CMakeFiles/swim_common.dir/logging.cc.o.d"
  "CMakeFiles/swim_common.dir/random.cc.o"
  "CMakeFiles/swim_common.dir/random.cc.o.d"
  "CMakeFiles/swim_common.dir/status.cc.o"
  "CMakeFiles/swim_common.dir/status.cc.o.d"
  "CMakeFiles/swim_common.dir/string_util.cc.o"
  "CMakeFiles/swim_common.dir/string_util.cc.o.d"
  "CMakeFiles/swim_common.dir/units.cc.o"
  "CMakeFiles/swim_common.dir/units.cc.o.d"
  "libswim_common.a"
  "libswim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

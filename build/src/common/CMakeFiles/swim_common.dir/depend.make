# Empty dependencies file for swim_common.
# This may be replaced when dependencies are built.

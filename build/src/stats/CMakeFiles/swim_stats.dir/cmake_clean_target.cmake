file(REMOVE_RECURSE
  "libswim_stats.a"
)

# Empty dependencies file for swim_stats.
# This may be replaced when dependencies are built.

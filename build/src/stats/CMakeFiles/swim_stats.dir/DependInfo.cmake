
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/burstiness.cc" "src/stats/CMakeFiles/swim_stats.dir/burstiness.cc.o" "gcc" "src/stats/CMakeFiles/swim_stats.dir/burstiness.cc.o.d"
  "/root/repo/src/stats/correlation.cc" "src/stats/CMakeFiles/swim_stats.dir/correlation.cc.o" "gcc" "src/stats/CMakeFiles/swim_stats.dir/correlation.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/stats/CMakeFiles/swim_stats.dir/descriptive.cc.o" "gcc" "src/stats/CMakeFiles/swim_stats.dir/descriptive.cc.o.d"
  "/root/repo/src/stats/empirical_cdf.cc" "src/stats/CMakeFiles/swim_stats.dir/empirical_cdf.cc.o" "gcc" "src/stats/CMakeFiles/swim_stats.dir/empirical_cdf.cc.o.d"
  "/root/repo/src/stats/fourier.cc" "src/stats/CMakeFiles/swim_stats.dir/fourier.cc.o" "gcc" "src/stats/CMakeFiles/swim_stats.dir/fourier.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/swim_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/swim_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/kmeans.cc" "src/stats/CMakeFiles/swim_stats.dir/kmeans.cc.o" "gcc" "src/stats/CMakeFiles/swim_stats.dir/kmeans.cc.o.d"
  "/root/repo/src/stats/regression.cc" "src/stats/CMakeFiles/swim_stats.dir/regression.cc.o" "gcc" "src/stats/CMakeFiles/swim_stats.dir/regression.cc.o.d"
  "/root/repo/src/stats/sampling.cc" "src/stats/CMakeFiles/swim_stats.dir/sampling.cc.o" "gcc" "src/stats/CMakeFiles/swim_stats.dir/sampling.cc.o.d"
  "/root/repo/src/stats/zipf.cc" "src/stats/CMakeFiles/swim_stats.dir/zipf.cc.o" "gcc" "src/stats/CMakeFiles/swim_stats.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/swim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

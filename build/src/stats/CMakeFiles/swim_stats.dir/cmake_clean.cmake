file(REMOVE_RECURSE
  "CMakeFiles/swim_stats.dir/burstiness.cc.o"
  "CMakeFiles/swim_stats.dir/burstiness.cc.o.d"
  "CMakeFiles/swim_stats.dir/correlation.cc.o"
  "CMakeFiles/swim_stats.dir/correlation.cc.o.d"
  "CMakeFiles/swim_stats.dir/descriptive.cc.o"
  "CMakeFiles/swim_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/swim_stats.dir/empirical_cdf.cc.o"
  "CMakeFiles/swim_stats.dir/empirical_cdf.cc.o.d"
  "CMakeFiles/swim_stats.dir/fourier.cc.o"
  "CMakeFiles/swim_stats.dir/fourier.cc.o.d"
  "CMakeFiles/swim_stats.dir/histogram.cc.o"
  "CMakeFiles/swim_stats.dir/histogram.cc.o.d"
  "CMakeFiles/swim_stats.dir/kmeans.cc.o"
  "CMakeFiles/swim_stats.dir/kmeans.cc.o.d"
  "CMakeFiles/swim_stats.dir/regression.cc.o"
  "CMakeFiles/swim_stats.dir/regression.cc.o.d"
  "CMakeFiles/swim_stats.dir/sampling.cc.o"
  "CMakeFiles/swim_stats.dir/sampling.cc.o.d"
  "CMakeFiles/swim_stats.dir/zipf.cc.o"
  "CMakeFiles/swim_stats.dir/zipf.cc.o.d"
  "libswim_stats.a"
  "libswim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

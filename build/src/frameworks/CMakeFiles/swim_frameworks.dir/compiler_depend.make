# Empty compiler generated dependencies file for swim_frameworks.
# This may be replaced when dependencies are built.

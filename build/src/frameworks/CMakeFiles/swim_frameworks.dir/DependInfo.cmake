
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frameworks/hive.cc" "src/frameworks/CMakeFiles/swim_frameworks.dir/hive.cc.o" "gcc" "src/frameworks/CMakeFiles/swim_frameworks.dir/hive.cc.o.d"
  "/root/repo/src/frameworks/pig.cc" "src/frameworks/CMakeFiles/swim_frameworks.dir/pig.cc.o" "gcc" "src/frameworks/CMakeFiles/swim_frameworks.dir/pig.cc.o.d"
  "/root/repo/src/frameworks/query_plan.cc" "src/frameworks/CMakeFiles/swim_frameworks.dir/query_plan.cc.o" "gcc" "src/frameworks/CMakeFiles/swim_frameworks.dir/query_plan.cc.o.d"
  "/root/repo/src/frameworks/workflow.cc" "src/frameworks/CMakeFiles/swim_frameworks.dir/workflow.cc.o" "gcc" "src/frameworks/CMakeFiles/swim_frameworks.dir/workflow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/swim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/swim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

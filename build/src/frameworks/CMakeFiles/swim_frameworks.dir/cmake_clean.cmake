file(REMOVE_RECURSE
  "CMakeFiles/swim_frameworks.dir/hive.cc.o"
  "CMakeFiles/swim_frameworks.dir/hive.cc.o.d"
  "CMakeFiles/swim_frameworks.dir/pig.cc.o"
  "CMakeFiles/swim_frameworks.dir/pig.cc.o.d"
  "CMakeFiles/swim_frameworks.dir/query_plan.cc.o"
  "CMakeFiles/swim_frameworks.dir/query_plan.cc.o.d"
  "CMakeFiles/swim_frameworks.dir/workflow.cc.o"
  "CMakeFiles/swim_frameworks.dir/workflow.cc.o.d"
  "libswim_frameworks.a"
  "libswim_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swim_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libswim_frameworks.a"
)

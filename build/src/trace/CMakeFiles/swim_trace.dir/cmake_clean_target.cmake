file(REMOVE_RECURSE
  "libswim_trace.a"
)

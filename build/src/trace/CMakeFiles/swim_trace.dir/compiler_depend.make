# Empty compiler generated dependencies file for swim_trace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/swim_trace.dir/filters.cc.o"
  "CMakeFiles/swim_trace.dir/filters.cc.o.d"
  "CMakeFiles/swim_trace.dir/frameworks.cc.o"
  "CMakeFiles/swim_trace.dir/frameworks.cc.o.d"
  "CMakeFiles/swim_trace.dir/job_record.cc.o"
  "CMakeFiles/swim_trace.dir/job_record.cc.o.d"
  "CMakeFiles/swim_trace.dir/summary.cc.o"
  "CMakeFiles/swim_trace.dir/summary.cc.o.d"
  "CMakeFiles/swim_trace.dir/trace.cc.o"
  "CMakeFiles/swim_trace.dir/trace.cc.o.d"
  "CMakeFiles/swim_trace.dir/trace_io.cc.o"
  "CMakeFiles/swim_trace.dir/trace_io.cc.o.d"
  "libswim_trace.a"
  "libswim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

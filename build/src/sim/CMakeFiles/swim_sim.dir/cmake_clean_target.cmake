file(REMOVE_RECURSE
  "libswim_sim.a"
)

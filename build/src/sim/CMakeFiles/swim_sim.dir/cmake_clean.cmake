file(REMOVE_RECURSE
  "CMakeFiles/swim_sim.dir/energy.cc.o"
  "CMakeFiles/swim_sim.dir/energy.cc.o.d"
  "CMakeFiles/swim_sim.dir/replay.cc.o"
  "CMakeFiles/swim_sim.dir/replay.cc.o.d"
  "CMakeFiles/swim_sim.dir/scheduler.cc.o"
  "CMakeFiles/swim_sim.dir/scheduler.cc.o.d"
  "libswim_sim.a"
  "libswim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for swim_sim.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for workflow_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/workflow_study.dir/workflow_study.cpp.o"
  "CMakeFiles/workflow_study.dir/workflow_study.cpp.o.d"
  "workflow_study"
  "workflow_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

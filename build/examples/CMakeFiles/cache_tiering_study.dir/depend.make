# Empty dependencies file for cache_tiering_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cache_tiering_study.dir/cache_tiering_study.cpp.o"
  "CMakeFiles/cache_tiering_study.dir/cache_tiering_study.cpp.o.d"
  "cache_tiering_study"
  "cache_tiering_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_tiering_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

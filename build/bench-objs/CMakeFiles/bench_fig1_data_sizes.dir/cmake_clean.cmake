file(REMOVE_RECURSE
  "../bench/bench_fig1_data_sizes"
  "../bench/bench_fig1_data_sizes.pdb"
  "CMakeFiles/bench_fig1_data_sizes.dir/bench_fig1_data_sizes.cc.o"
  "CMakeFiles/bench_fig1_data_sizes.dir/bench_fig1_data_sizes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_data_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

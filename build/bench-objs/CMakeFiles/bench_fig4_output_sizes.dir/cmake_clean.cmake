file(REMOVE_RECURSE
  "../bench/bench_fig4_output_sizes"
  "../bench/bench_fig4_output_sizes.pdb"
  "CMakeFiles/bench_fig4_output_sizes.dir/bench_fig4_output_sizes.cc.o"
  "CMakeFiles/bench_fig4_output_sizes.dir/bench_fig4_output_sizes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_output_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig4_output_sizes.
# This may be replaced when dependencies are built.

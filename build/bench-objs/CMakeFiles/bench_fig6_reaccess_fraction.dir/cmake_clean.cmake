file(REMOVE_RECURSE
  "../bench/bench_fig6_reaccess_fraction"
  "../bench/bench_fig6_reaccess_fraction.pdb"
  "CMakeFiles/bench_fig6_reaccess_fraction.dir/bench_fig6_reaccess_fraction.cc.o"
  "CMakeFiles/bench_fig6_reaccess_fraction.dir/bench_fig6_reaccess_fraction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_reaccess_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

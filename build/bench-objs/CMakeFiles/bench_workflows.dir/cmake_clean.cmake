file(REMOVE_RECURSE
  "../bench/bench_workflows"
  "../bench/bench_workflows.pdb"
  "CMakeFiles/bench_workflows.dir/bench_workflows.cc.o"
  "CMakeFiles/bench_workflows.dir/bench_workflows.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

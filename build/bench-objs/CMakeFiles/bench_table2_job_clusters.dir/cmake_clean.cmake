file(REMOVE_RECURSE
  "../bench/bench_table2_job_clusters"
  "../bench/bench_table2_job_clusters.pdb"
  "CMakeFiles/bench_table2_job_clusters.dir/bench_table2_job_clusters.cc.o"
  "CMakeFiles/bench_table2_job_clusters.dir/bench_table2_job_clusters.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_job_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

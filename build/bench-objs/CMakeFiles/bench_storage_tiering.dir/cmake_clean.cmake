file(REMOVE_RECURSE
  "../bench/bench_storage_tiering"
  "../bench/bench_storage_tiering.pdb"
  "CMakeFiles/bench_storage_tiering.dir/bench_storage_tiering.cc.o"
  "CMakeFiles/bench_storage_tiering.dir/bench_storage_tiering.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_storage_tiering.
# This may be replaced when dependencies are built.

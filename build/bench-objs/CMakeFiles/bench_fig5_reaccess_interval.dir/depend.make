# Empty dependencies file for bench_fig5_reaccess_interval.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig5_reaccess_interval"
  "../bench/bench_fig5_reaccess_interval.pdb"
  "CMakeFiles/bench_fig5_reaccess_interval.dir/bench_fig5_reaccess_interval.cc.o"
  "CMakeFiles/bench_fig5_reaccess_interval.dir/bench_fig5_reaccess_interval.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_reaccess_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

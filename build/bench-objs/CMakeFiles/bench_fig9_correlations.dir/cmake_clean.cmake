file(REMOVE_RECURSE
  "../bench/bench_fig9_correlations"
  "../bench/bench_fig9_correlations.pdb"
  "CMakeFiles/bench_fig9_correlations.dir/bench_fig9_correlations.cc.o"
  "CMakeFiles/bench_fig9_correlations.dir/bench_fig9_correlations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_correlations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

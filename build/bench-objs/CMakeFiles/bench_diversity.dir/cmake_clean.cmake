file(REMOVE_RECURSE
  "../bench/bench_diversity"
  "../bench/bench_diversity.pdb"
  "CMakeFiles/bench_diversity.dir/bench_diversity.cc.o"
  "CMakeFiles/bench_diversity.dir/bench_diversity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_synth_fidelity"
  "../bench/bench_synth_fidelity.pdb"
  "CMakeFiles/bench_synth_fidelity.dir/bench_synth_fidelity.cc.o"
  "CMakeFiles/bench_synth_fidelity.dir/bench_synth_fidelity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synth_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_scheduler_tiers.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_scheduler_tiers"
  "../bench/bench_scheduler_tiers.pdb"
  "CMakeFiles/bench_scheduler_tiers.dir/bench_scheduler_tiers.cc.o"
  "CMakeFiles/bench_scheduler_tiers.dir/bench_scheduler_tiers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scheduler_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

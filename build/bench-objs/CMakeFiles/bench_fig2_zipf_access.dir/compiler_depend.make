# Empty compiler generated dependencies file for bench_fig2_zipf_access.
# This may be replaced when dependencies are built.

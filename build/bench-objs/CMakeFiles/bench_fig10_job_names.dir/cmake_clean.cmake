file(REMOVE_RECURSE
  "../bench/bench_fig10_job_names"
  "../bench/bench_fig10_job_names.pdb"
  "CMakeFiles/bench_fig10_job_names.dir/bench_fig10_job_names.cc.o"
  "CMakeFiles/bench_fig10_job_names.dir/bench_fig10_job_names.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_job_names.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig10_job_names.
# This may be replaced when dependencies are built.

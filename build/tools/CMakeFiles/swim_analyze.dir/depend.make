# Empty dependencies file for swim_analyze.
# This may be replaced when dependencies are built.

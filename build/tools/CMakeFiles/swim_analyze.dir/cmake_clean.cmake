file(REMOVE_RECURSE
  "CMakeFiles/swim_analyze.dir/swim_analyze.cc.o"
  "CMakeFiles/swim_analyze.dir/swim_analyze.cc.o.d"
  "swim_analyze"
  "swim_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swim_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for swim_generate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/swim_generate.dir/swim_generate.cc.o"
  "CMakeFiles/swim_generate.dir/swim_generate.cc.o.d"
  "swim_generate"
  "swim_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swim_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

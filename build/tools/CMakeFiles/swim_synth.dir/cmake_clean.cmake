file(REMOVE_RECURSE
  "CMakeFiles/swim_synth.dir/swim_synth.cc.o"
  "CMakeFiles/swim_synth.dir/swim_synth.cc.o.d"
  "swim_synth"
  "swim_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swim_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

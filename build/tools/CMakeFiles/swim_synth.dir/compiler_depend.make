# Empty compiler generated dependencies file for swim_synth.
# This may be replaced when dependencies are built.

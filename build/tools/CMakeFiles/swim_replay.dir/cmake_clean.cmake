file(REMOVE_RECURSE
  "CMakeFiles/swim_replay.dir/swim_replay.cc.o"
  "CMakeFiles/swim_replay.dir/swim_replay.cc.o.d"
  "swim_replay"
  "swim_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swim_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

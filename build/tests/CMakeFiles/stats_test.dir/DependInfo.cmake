
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/stats_test.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/swim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/swim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/frameworks/CMakeFiles/swim_frameworks.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/swim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/swim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/swim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/swim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/tiered_test.dir/tiered_test.cc.o"
  "CMakeFiles/tiered_test.dir/tiered_test.cc.o.d"
  "tiered_test"
  "tiered_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiered_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

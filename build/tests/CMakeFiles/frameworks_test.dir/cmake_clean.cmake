file(REMOVE_RECURSE
  "CMakeFiles/frameworks_test.dir/frameworks_test.cc.o"
  "CMakeFiles/frameworks_test.dir/frameworks_test.cc.o.d"
  "frameworks_test"
  "frameworks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frameworks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for replay_property_test.
# This may be replaced when dependencies are built.

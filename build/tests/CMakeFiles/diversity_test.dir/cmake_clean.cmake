file(REMOVE_RECURSE
  "CMakeFiles/diversity_test.dir/diversity_test.cc.o"
  "CMakeFiles/diversity_test.dir/diversity_test.cc.o.d"
  "diversity_test"
  "diversity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diversity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

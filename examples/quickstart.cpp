// Quickstart: the 30-second tour of swimcpp.
//
//   quickstart [trace.csv]
//
// Without an argument, generates a scaled-down instance of the paper's
// FB-2009 workload; with one, loads your own Hadoop-style job trace (see
// trace/trace_io.h for the CSV schema). Either way it runs the full
// analysis pipeline from the paper - data access patterns (sec. 4),
// temporal behavior (sec. 5), compute patterns (sec. 6) - and prints the
// combined report.
#include <cstdio>

#include "core/analysis/workload_report.h"
#include "trace/trace_io.h"
#include "workloads/paper_workloads.h"
#include "workloads/trace_generator.h"

int main(int argc, char** argv) {
  using namespace swim;

  trace::Trace trace;
  if (argc > 1) {
    auto loaded = trace::ReadTraceCsv(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    trace = *std::move(loaded);
    std::printf("Loaded %zu jobs from %s\n", trace.size(), argv[1]);
  } else {
    auto spec = workloads::PaperWorkloadByName("FB-2009");
    workloads::GeneratorOptions options;
    options.job_count_override = 20000;  // scaled down for a quick demo
    options.seed = 1;
    auto generated = workloads::GenerateTrace(*spec, options);
    if (!generated.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    trace = *std::move(generated);
    std::printf("Generated %zu jobs shaped like the paper's FB-2009 "
                "workload.\n",
                trace.size());
  }

  auto report = core::AnalyzeWorkload(trace);
  if (!report.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", core::FormatReport(*report).c_str());
  return 0;
}

// SWIM in one sitting: fit an empirical model to a production-shaped
// trace, persist it, synthesize a scaled-down replica, verify statistical
// fidelity, and replay both on a simulated Hadoop cluster to compare what
// a scheduler would experience.
//
// This is the paper's section 7 pipeline: the model IS the trace
// ("empirical models"), and scale-down lets a 30-node test cluster stand
// in for a 600-node production one.
#include <cstdio>

#include "common/units.h"
#include "core/synth/fidelity.h"
#include "core/synth/synthesizer.h"
#include "core/synth/workload_model.h"
#include "sim/replay.h"
#include "workloads/paper_workloads.h"
#include "workloads/trace_generator.h"

int main() {
  using namespace swim;

  // 1. A production-shaped source trace (CC-c: telecom/media-scale).
  auto spec = workloads::PaperWorkloadByName("CC-c");
  workloads::GeneratorOptions gen_options;
  gen_options.job_count_override = 15000;
  auto source = workloads::GenerateTrace(*spec, gen_options);
  SWIM_CHECK_OK(source.status());
  std::printf("Source: %zu jobs over %s\n", source->size(),
              FormatDuration(source->Span()).c_str());

  // 2. Fit and persist the empirical workload model.
  auto model = core::BuildModel(*source);
  SWIM_CHECK_OK(model.status());
  const std::string model_path = "/tmp/swim_ccc.model";
  SWIM_CHECK_OK(core::SaveModel(*model, model_path));
  auto reloaded = core::LoadModel(model_path);
  SWIM_CHECK_OK(reloaded.status());
  std::printf("Model: %zu exemplars, Zipf slope %.2f, saved to %s\n",
              reloaded->exemplars.size(), reloaded->file_model.zipf_slope,
              model_path.c_str());

  // 3. Synthesize a 5x scaled-down workload (fewer jobs, same span).
  core::SynthesisOptions synth_options;
  synth_options.job_count = source->size() / 5;
  auto synth = core::SynthesizeTrace(*reloaded, synth_options);
  SWIM_CHECK_OK(synth.status());

  // 4. Fidelity: per-dimension KS distance against the source.
  core::FidelityReport fidelity = core::CompareTraces(*source, *synth);
  std::printf("\nFidelity of the synthetic workload:\n%s\n",
              core::FormatFidelity(fidelity).c_str());

  // 5. Replay: source on the production-sized cluster, replica on a
  // 5x smaller one.
  sim::ReplayOptions production;
  production.cluster.nodes = 700;
  production.scheduler = "fair";
  sim::ReplayOptions test_rig = production;
  test_rig.cluster.nodes = 140;

  auto source_replay = sim::ReplayTrace(*source, production);
  auto synth_replay = sim::ReplayTrace(*synth, test_rig);
  SWIM_CHECK_OK(source_replay.status());
  SWIM_CHECK_OK(synth_replay.status());
  std::printf("Replay comparison (what the scheduler experiences):\n");
  std::printf("  %-28s %14s %14s\n", "", "production/src", "test-rig/synth");
  stats::SortedStats source_latencies = source_replay->LatencyStats(true);
  stats::SortedStats synth_latencies = synth_replay->LatencyStats(true);
  std::printf("  %-28s %14s %14s\n", "small-job p50 latency",
              FormatDuration(source_latencies.Quantile(0.5)).c_str(),
              FormatDuration(synth_latencies.Quantile(0.5)).c_str());
  std::printf("  %-28s %14s %14s\n", "small-job p90 latency",
              FormatDuration(source_latencies.Quantile(0.9)).c_str(),
              FormatDuration(synth_latencies.Quantile(0.9)).c_str());
  std::printf("  %-28s %13.0f%% %13.0f%%\n", "cluster utilization",
              100 * source_replay->utilization,
              100 * synth_replay->utilization);
  return 0;
}

// Capacity planning with trace replay: how many nodes does this workload
// need to keep interactive jobs interactive?
//
// The paper's section 6.2 argues MapReduce clusters serve two populations
// - a >90% mass of small interactive jobs and a heavy batch tail - and
// that scheduling policy determines whether buying more nodes is even the
// right fix. This example sweeps cluster sizes under FIFO and two-tier
// scheduling against a small-job p90 latency objective.
#include <cstdio>

#include "common/units.h"
#include "sim/replay.h"
#include "workloads/paper_workloads.h"
#include "workloads/trace_generator.h"

int main() {
  using namespace swim;

  auto spec = workloads::PaperWorkloadByName("CC-e");
  workloads::GeneratorOptions options;
  options.job_count_override = 10790;  // full CC-e
  auto trace = workloads::GenerateTrace(*spec, options);
  SWIM_CHECK_OK(trace.status());

  constexpr double kSloSeconds = 60.0;  // "interactive": p90 under a minute
  std::printf("Workload: CC-e (%zu jobs over %s); SLO: small-job p90 "
              "latency <= %s\n\n",
              trace->size(), FormatDuration(trace->Span()).c_str(),
              FormatDuration(kSloSeconds).c_str());
  std::printf("%7s | %12s %12s %5s | %12s %12s %5s\n", "nodes",
              "FIFO p90", "large p50", "SLO", "2-tier p90", "large p50",
              "SLO");

  int fifo_needed = -1;
  int tiered_needed = -1;
  for (int nodes : {10, 25, 50, 100, 200}) {
    double p90[2];
    double large_p50[2];
    int column = 0;
    for (const char* policy : {"fifo", "two-tier"}) {
      sim::ReplayOptions replay_options;
      replay_options.cluster.nodes = nodes;
      replay_options.scheduler = policy;
      auto result = sim::ReplayTrace(*trace, replay_options);
      SWIM_CHECK_OK(result.status());
      p90[column] = result->LatencyQuantile(/*small_jobs=*/true, 0.9);
      large_p50[column] = result->LatencyQuantile(false, 0.5);
      ++column;
    }
    if (fifo_needed < 0 && p90[0] <= kSloSeconds) fifo_needed = nodes;
    if (tiered_needed < 0 && p90[1] <= kSloSeconds) tiered_needed = nodes;
    std::printf("%7d | %12s %12s %5s | %12s %12s %5s\n", nodes,
                FormatDuration(p90[0]).c_str(),
                FormatDuration(large_p50[0]).c_str(),
                p90[0] <= kSloSeconds ? "ok" : "MISS",
                FormatDuration(p90[1]).c_str(),
                FormatDuration(large_p50[1]).c_str(),
                p90[1] <= kSloSeconds ? "ok" : "MISS");
  }

  std::printf("\n");
  if (tiered_needed > 0) {
    std::printf("Two-tier scheduling meets the SLO at %d nodes", tiered_needed);
    if (fifo_needed > 0) {
      std::printf(" vs %d for FIFO", fifo_needed);
    } else {
      std::printf(" while FIFO misses it at every size tested");
    }
    std::printf(" - scheduling, not hardware, is the cheaper lever\n"
                "(the paper's performance-tier/capacity-tier proposal).\n");
  } else {
    std::printf("Neither policy met the SLO; this workload needs more "
                "capacity outright.\n");
  }
  return 0;
}

// Workflow study: compile Hive queries and Pig scripts to MapReduce stage
// chains, generate a tagged multi-stage trace, reconstruct the workflows
// from the job log, and replay them dependency-aware - the query-level
// view of a MapReduce cluster the paper's future-work section asks for.
#include <cstdio>

#include "common/units.h"
#include "frameworks/hive.h"
#include "frameworks/pig.h"
#include "frameworks/workflow.h"
#include "sim/replay.h"

int main() {
  using namespace swim;

  // 1. Compile individual programs and inspect their plans.
  frameworks::HiveQuerySpec query;
  query.kind = frameworks::HiveQuerySpec::Kind::kInsert;
  query.selectivity = 0.2;
  query.joins = 1;
  query.group_by = true;
  query.aggregation_ratio = 0.01;
  auto hive_chain = frameworks::CompileHiveQuery(query);
  SWIM_CHECK_OK(hive_chain.status());
  std::printf("HiveQL: %s\n", frameworks::HiveQueryText(query).c_str());
  std::printf("compiles to %zu MapReduce stages:\n",
              hive_chain->stages.size());
  for (size_t s = 0; s < hive_chain->stages.size(); ++s) {
    const auto& stage = hive_chain->stages[s];
    std::printf("  Stage-%zu %-14s shuffle=%.2fx input, output=%.2fx\n",
                s + 1, stage.role.c_str(), stage.shuffle_ratio,
                stage.output_ratio);
  }
  std::printf("end-to-end: output = %.4fx input, total shuffle = %.2fx\n\n",
              frameworks::ChainOutputRatio(*hive_chain),
              frameworks::ChainShuffleRatio(*hive_chain));

  auto pig_chain = frameworks::CompilePigScript(
      frameworks::PigJoinScript(0.3, 0.7, 0.05));
  SWIM_CHECK_OK(pig_chain.status());
  std::printf("Pig join script compiles to %zu stages (%s)\n\n",
              pig_chain->stages.size(), pig_chain->program.c_str());

  // 2. A day of mixed workflows; reconstruct them from the job log alone.
  frameworks::WorkflowGeneratorOptions options;
  options.workflows = 250;
  options.span_seconds = kDay;
  auto wt = frameworks::GenerateWorkflowTrace(options);
  SWIM_CHECK_OK(wt.status());
  frameworks::WorkflowReport report =
      frameworks::ReconstructWorkflows(wt->trace);
  std::printf("generated %zu jobs; reconstructed %zu workflows "
              "(mean %.1f stages, %.0f%% multi-stage)\n",
              wt->trace.size(), report.workflows.size(), report.mean_stages,
              100 * report.multi_stage_fraction);

  // 3. Replay with stage dependencies honored.
  sim::ReplayOptions replay_options;
  replay_options.cluster.nodes = 30;
  replay_options.scheduler = "fair";
  replay_options.dependencies = wt->dependencies;
  auto replay = sim::ReplayTrace(wt->trace, replay_options);
  SWIM_CHECK_OK(replay.status());
  std::printf("replayed on 30 nodes: %zu jobs done, utilization %.0f%%, "
              "no stage ever ran before its parent (%zu unfinished)\n",
              replay->outcomes.size(), 100 * replay->utilization,
              replay->unfinished_jobs);
  return 0;
}

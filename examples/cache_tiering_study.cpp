// Storage tiering study: should this cluster add a cache tier, and with
// what policy? Implements the decision procedure suggested by the paper's
// section 4: measure the intrinsic re-access rate (upper bound), then
// sweep policies and capacities and find the smallest cache that captures
// most of it. The paper's proposal - admit only files under a size
// threshold, evict LRU - is compared against plain LRU/LFU/FIFO.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/units.h"
#include "storage/access_stream.h"
#include "storage/cache.h"
#include "workloads/paper_workloads.h"
#include "workloads/trace_generator.h"

int main() {
  using namespace swim;

  auto spec = workloads::PaperWorkloadByName("CC-d");
  workloads::GeneratorOptions options;
  options.job_count_override = 13283;  // full CC-d
  auto trace = workloads::GenerateTrace(*spec, options);
  SWIM_CHECK_OK(trace.status());
  auto accesses = storage::ExtractAccesses(*trace);

  storage::UnboundedCache unbounded;
  storage::ReplayAccesses(accesses, unbounded);
  double intrinsic = unbounded.stats().HitRate();
  double all_bytes = unbounded.used_bytes();
  std::printf("CC-d access stream: %zu accesses over %zu jobs\n",
              accesses.size(), trace->size());
  std::printf("Intrinsic re-access rate (infinite cache): %.0f%% of reads, "
              "touching %s of distinct data\n\n",
              100 * intrinsic, FormatBytes(all_bytes).c_str());

  std::printf("%-30s %10s %9s %10s\n", "policy", "capacity", "hit rate",
              "of optimal");
  for (double capacity : {100 * kGB, 1 * kTB, 10 * kTB, 50 * kTB}) {
    std::vector<std::unique_ptr<storage::FileCache>> caches;
    caches.push_back(std::make_unique<storage::LruCache>(capacity));
    caches.push_back(std::make_unique<storage::LfuCache>(capacity));
    caches.push_back(std::make_unique<storage::FifoCache>(capacity));
    caches.push_back(std::make_unique<storage::SizeThresholdLruCache>(
        capacity, /*max_file_bytes=*/capacity / 20));
    for (auto& cache : caches) {
      storage::ReplayAccesses(accesses, *cache);
      double rate = cache->stats().HitRate();
      std::printf("%-30s %10s %8.1f%% %9.0f%%\n", cache->name().c_str(),
                  FormatBytes(capacity).c_str(), 100 * rate,
                  intrinsic > 0 ? 100 * rate / intrinsic : 0.0);
    }
    std::printf("\n");
  }

  std::printf(
      "Reading the table: a cache holding a small fraction of the %s\n"
      "working set already captures most of the achievable hits, because\n"
      "access frequency is Zipf-distributed and 75%% of re-accesses arrive\n"
      "within hours (paper sec. 4.2-4.3). The size-threshold variant is\n"
      "the paper's sustainable policy: its capacity need not grow with\n"
      "total data volume.\n",
      FormatBytes(all_bytes).c_str());
  return 0;
}
